package wire

import (
	"bytes"
	"errors"
	"testing"

	"sias/internal/catalog"
	"sias/internal/engine"
	"sias/internal/txn"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("hello sias")
	if err := WriteFrame(&buf, uint8(OpInsert), payload); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, uint8(OpStats), nil); err != nil {
		t.Fatal(err)
	}
	tag, p, err := ReadFrame(&buf)
	if err != nil || Op(tag) != OpInsert || !bytes.Equal(p, payload) {
		t.Fatalf("frame 1: tag=%d payload=%q err=%v", tag, p, err)
	}
	tag, p, err = ReadFrame(&buf)
	if err != nil || Op(tag) != OpStats || len(p) != 0 {
		t.Fatalf("frame 2: tag=%d payload=%q err=%v", tag, p, err)
	}
}

func TestFrameSizeLimit(t *testing.T) {
	var buf bytes.Buffer
	// A length field over MaxFrame must be rejected without allocation.
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff})
	if _, _, err := ReadFrame(&buf); !errors.Is(err, ErrFrameTooLarge) {
		t.Fatalf("got %v, want ErrFrameTooLarge", err)
	}
}

func TestPayloadRoundTrip(t *testing.T) {
	var b Buf
	b.U64(42)
	b.I64(-7)
	b.Bytes([]byte("val"))
	b.U32(9)
	r := Reader{B: b.B}
	if v, err := r.U64(); err != nil || v != 42 {
		t.Fatalf("u64: %d %v", v, err)
	}
	if v, err := r.I64(); err != nil || v != -7 {
		t.Fatalf("i64: %d %v", v, err)
	}
	if v, err := r.Bytes(); err != nil || string(v) != "val" {
		t.Fatalf("bytes: %q %v", v, err)
	}
	if v, err := r.U32(); err != nil || v != 9 {
		t.Fatalf("u32: %d %v", v, err)
	}
	if _, err := r.U32(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("empty reader: %v, want ErrTruncated", err)
	}
	short := Reader{B: []byte{3, 0, 0, 0, 'a'}}
	if _, err := short.Bytes(); !errors.Is(err, ErrTruncated) {
		t.Fatalf("short bytes: %v, want ErrTruncated", err)
	}
}

// TestErrorCodeMappingTotal asserts the error->code mapping covers every
// exported sentinel error of the engine, txn and wire packages: nothing the
// stack can legitimately return may degrade into CodeInternal, and codes
// must be stable under an encode/decode round trip.
func TestErrorCodeMappingTotal(t *testing.T) {
	sentinels := map[string]error{
		"engine.ErrNotFound":    engine.ErrNotFound,
		"engine.ErrExists":      engine.ErrExists,
		"engine.ErrNoTable":     engine.ErrNoTable,
		"engine.ErrNoIndex":     engine.ErrNoIndex,
		"catalog.ErrBadName":    catalog.ErrBadName,
		"txn.ErrSerialization":  txn.ErrSerialization,
		"txn.ErrLockTimeout":    txn.ErrLockTimeout,
		"txn.ErrFinished":       txn.ErrFinished,
		"wire.ErrOverloaded":    ErrOverloaded,
		"wire.ErrShuttingDown":  ErrShuttingDown,
		"wire.ErrUnknownTx":     ErrUnknownTx,
		"wire.ErrBadRequest":    ErrBadRequest,
		"wire.ErrTruncated":     ErrTruncated,
		"wire.ErrFrameTooLarge": ErrFrameTooLarge,
	}
	seen := map[Code]bool{}
	for name, err := range sentinels {
		code := CodeOf(err)
		if code == CodeInternal {
			t.Errorf("%s maps to CodeInternal; mapping is not total", name)
		}
		if code == CodeOK {
			t.Errorf("%s maps to CodeOK", name)
		}
		seen[code] = true
		// Round trip: decoding the code and re-encoding must be stable,
		// and wrapped errors must keep their code.
		back := ErrOf(code, "remote detail")
		if CodeOf(back) != code {
			t.Errorf("%s: code %s not stable under round trip (got %s)", name, code, CodeOf(back))
		}
	}
	// The four engine/txn sentinels named by the protocol must rehydrate
	// into errors.Is-compatible values for cross-network error handling.
	for _, tc := range []struct {
		code Code
		want error
	}{
		{CodeNotFound, engine.ErrNotFound},
		{CodeConflict, txn.ErrSerialization},
		{CodeLockTimeout, txn.ErrLockTimeout},
		{CodeTxFinished, txn.ErrFinished},
		{CodeOverloaded, ErrOverloaded},
		{CodeShuttingDown, ErrShuttingDown},
		{CodeExists, engine.ErrExists},
		{CodeNoTable, engine.ErrNoTable},
		{CodeNoIndex, engine.ErrNoIndex},
	} {
		if !errors.Is(ErrOf(tc.code, "x"), tc.want) {
			t.Errorf("ErrOf(%s) does not satisfy errors.Is(%v)", tc.code, tc.want)
		}
	}
	// Unknown errors fall through to CodeInternal, and unknown codes decode
	// without panicking.
	if CodeOf(errors.New("surprise")) != CodeInternal {
		t.Error("unrecognized error must map to CodeInternal")
	}
	if err := ErrOf(CodeInternal, "boom"); err == nil {
		t.Error("CodeInternal must decode to a non-nil error")
	}
	if err := ErrOf(Code(200), "future"); err == nil {
		t.Error("unknown code must decode to a non-nil error")
	}
}

func TestTraceEnvelopeRoundTrip(t *testing.T) {
	inner := []byte{1, 2, 3, 4}
	env := EncodeTraceEnvelope(0xdeadbeefcafef00d, 0x1122334455667788, true, OpCommit, inner)
	traceID, parentSpan, sampled, op, payload, err := DecodeTraceEnvelope(env)
	if err != nil {
		t.Fatal(err)
	}
	if traceID != 0xdeadbeefcafef00d || parentSpan != 0x1122334455667788 || !sampled ||
		op != OpCommit || !bytes.Equal(payload, inner) {
		t.Fatalf("round trip: trace=%x parent=%x sampled=%v op=%v payload=%v",
			traceID, parentSpan, sampled, op, payload)
	}
	// Empty inner payload and unsampled bit survive too.
	env = EncodeTraceEnvelope(1, 0, false, OpBegin, nil)
	_, parentSpan, sampled, op, payload, err = DecodeTraceEnvelope(env)
	if err != nil || parentSpan != 0 || sampled || op != OpBegin || len(payload) != 0 {
		t.Fatalf("empty round trip: parent=%x sampled=%v op=%v payload=%v err=%v",
			parentSpan, sampled, op, payload, err)
	}
	// Every truncation of the 18-byte header is a decode error, not a panic.
	for cut := 0; cut < 18; cut++ {
		if _, _, _, _, _, err := DecodeTraceEnvelope(env[:cut]); err == nil {
			t.Fatalf("truncated envelope (%d bytes) decoded", cut)
		}
	}
}
