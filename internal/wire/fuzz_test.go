package wire

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReadFrame throws arbitrary byte streams at the frame parser: it must
// never panic, never allocate past MaxFrame, and on success a re-encode of
// (tag, payload) must reproduce the consumed bytes exactly.
func FuzzReadFrame(f *testing.F) {
	seed := func(tag uint8, payload []byte) []byte {
		var buf bytes.Buffer
		if err := WriteFrame(&buf, tag, payload); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(uint8(OpBegin), nil))
	f.Add(seed(uint8(OpInsert), []byte("key and value bytes")))
	f.Add(seed(uint8(OpStats), bytes.Repeat([]byte{0xab}, 300)))
	f.Add([]byte{})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 1})
	f.Add([]byte{0, 0, 0, 0})
	f.Add([]byte{5, 0, 0, 0, 9, 1, 2})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		tag, payload, err := ReadFrame(r)
		if err != nil {
			return
		}
		consumed := len(data) - r.Len()
		var out bytes.Buffer
		if werr := WriteFrame(&out, tag, payload); werr != nil {
			t.Fatalf("re-encode of parsed frame failed: %v", werr)
		}
		if !bytes.Equal(out.Bytes(), data[:consumed]) {
			t.Fatalf("round trip mismatch: parsed %q from % x, re-encoded % x",
				payload, data[:consumed], out.Bytes())
		}
	})
}

// FuzzPayloadReader drives the primitive payload decoder over arbitrary
// bytes with an arbitrary field script: decoding must never panic or read
// out of bounds, and decoded fields must re-encode to the consumed prefix.
func FuzzPayloadReader(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{1})
	f.Add([]byte{3, 0, 0, 0, 'a', 'b', 'c'}, []byte{3})
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}, []byte{3})

	f.Fuzz(func(t *testing.T, data []byte, script []byte) {
		r := Reader{B: data}
		var re Buf
		for _, op := range script {
			var err error
			switch op % 4 {
			case 0:
				var v uint32
				v, err = r.U32()
				if err == nil {
					re.U32(v)
				}
			case 1:
				var v uint64
				v, err = r.U64()
				if err == nil {
					re.U64(v)
				}
			case 2:
				var v int64
				v, err = r.I64()
				if err == nil {
					re.I64(v)
				}
			case 3:
				var v []byte
				v, err = r.Bytes()
				if err == nil {
					re.Bytes(v)
				}
			}
			if err != nil {
				return
			}
		}
		consumed := len(data) - len(r.B)
		if !bytes.Equal(re.B, data[:consumed]) {
			t.Fatalf("decoded fields re-encode to % x, consumed % x", re.B, data[:consumed])
		}
	})
}

// FuzzFrameStream parses a stream of frames back-to-back, the way a server
// connection does, checking the parser leaves the stream positioned at a
// frame boundary after every successful read.
func FuzzFrameStream(f *testing.F) {
	var buf bytes.Buffer
	WriteFrame(&buf, uint8(OpBegin), nil)
	WriteFrame(&buf, uint8(OpGet), []byte{1, 0, 0, 0, 0, 0, 0, 0})
	f.Add(buf.Bytes())
	f.Add([]byte{1, 0, 0, 0, 42, 1, 0, 0, 0, 43})

	f.Fuzz(func(t *testing.T, data []byte) {
		r := bytes.NewReader(data)
		for i := 0; i < 64; i++ {
			_, _, err := ReadFrame(r)
			if err == io.EOF || err != nil {
				return
			}
		}
	})
}
