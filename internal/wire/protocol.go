// Authoritative operation and error-code table for the SIAS wire protocol.
// This file is the single source of truth: every request opcode and every
// response code the server and client speak is defined here, with its payload
// contract. wire.go holds the framing and primitive codecs; errors.go maps
// codes to Go sentinel errors.
//
// Requests (Op, frame tag of a request):
//
//	op  name          request payload                                  -> CodeOK payload
//	 1  BEGIN         ()                                               -> handle u64
//	 2  COMMIT        handle u64                                       -> shards u32, {durable LSN u64}*
//	 3  ABORT         handle u64                                       -> ()
//	 4  GET           handle u64, key i64                              -> val bytes
//	 5  INSERT        handle u64, key i64, val bytes                   -> ()
//	 6  UPDATE        handle u64, key i64, val bytes                   -> ()
//	 7  DELETE        handle u64, key i64                              -> ()
//	 8  SCAN          handle u64, lo i64, hi i64, limit u32            -> count u32, {key i64, val bytes}*
//	 9  STATS         ()                                               -> JSON bytes
//	10  SUBSCRIBE     announce bytes, shards u32, {start LSN u64}*     -> shards u32, {durable LSN u64}*, then CodeLogBatch stream
//	11  PROMOTE       ()                                               -> ()
//	12  SNAPSHOT      ()                                               -> shards u32, {token u64}*
//	13  BEGIN_AT      shards u32, {token u64}*                         -> handle u64 (read-only AS OF transaction)
//	14  CREATE_TABLE  name bytes, pk bytes, ncols u32,
//	                  {name bytes, type u8}*                           -> ()
//	15  DROP_TABLE    name bytes                                       -> ()
//	16  CREATE_INDEX  table bytes, index bytes, column bytes           -> ()
//	17  DROP_INDEX    table bytes, index bytes                         -> ()
//	18  INSERT_ROW    handle u64, table bytes, row bytes               -> ()
//	19  GET_ROW       handle u64, table bytes, key i64                 -> row bytes
//	20  UPDATE_ROW    handle u64, table bytes, row bytes               -> () (full-row replace by primary key)
//	21  DELETE_ROW    handle u64, table bytes, key i64                 -> ()
//	22  SCAN_TABLE    handle u64, table bytes, lo i64, hi i64,
//	                  limit u32                                        -> count u32, {row bytes}*
//	23  INDEX_LOOKUP  handle u64, table bytes, index bytes, key i64    -> count u32, {row bytes}*
//	24  INDEX_RANGE   handle u64, table bytes, index bytes, lo i64,
//	                  hi i64, limit u32                                -> count u32, {ikey i64, row bytes}*
//	25  LIST_TABLES   ()                                               -> JSON bytes (catalog listing)
//	26  REPL_LSN      ()                                               -> shards u32, {applied LSN u64}*
//	27  TRACE         trace id u64, parent span u64, sampled u8,
//	                  inner op u8, inner payload                       -> the inner op's reply
//
// TRACE is a transparent envelope: the server records a span for the inner
// op under the carried trace context and then dispatches the inner frame
// exactly as if it had arrived bare — the reply is the inner op's reply.
// Clients only send it when tracing is enabled, so an old server answering
// BAD_REQUEST degrades tracing, not the workload.
//
// COMMIT's reply vector is the per-shard durable WAL position at ack time —
// an upper bound on everything the transaction wrote. REPL_LSN reports the
// LSN vector reads on this server are guaranteed to observe: the replication
// applied positions on an unpromoted follower, the durable positions
// otherwise. A client enforces read-your-writes by routing reads only to
// servers whose REPL_LSN covers (is >= per shard) its last COMMIT vector.
//
// Rows in *_ROW/SCAN_TABLE/INDEX_* payloads are tuple.Schema row encodings
// (see internal/tuple), carried opaquely as u32-length-prefixed byte strings.
//
// Responses (Code, frame tag of a response). CodeOK carries the op-specific
// payload above; every other code carries a UTF-8 error message:
//
//	code  name           meaning
//	  0   OK             success
//	  1   NOT_FOUND      key has no visible row
//	  2   CONFLICT       first-updater-wins serialization failure; retry
//	  3   LOCK_TIMEOUT   lock wait exceeded its budget (possible deadlock)
//	  4   TX_FINISHED    transaction already committed or aborted
//	  5   UNKNOWN_TX     handle does not name a live transaction here
//	  6   OVERLOADED     admission control rejected; back off and retry
//	  7   SHUTTING_DOWN  server draining; reconnect elsewhere/later
//	  8   BAD_REQUEST    malformed frame or unknown opcode (ERR_BAD_OP)
//	  9   INTERNAL       unexpected server-side failure
//	 10   LOG_BATCH      replication stream frame (SUBSCRIBE connections)
//	 11   READ_ONLY      write rejected on an unpromoted follower
//	 12   EXISTS         DDL names a table/index that already exists
//	 13   NO_TABLE       operation names an unknown table
//	 14   NO_INDEX       operation names an unknown index
//
// Compatibility rules: opcodes and codes may be appended, but existing values
// never change meaning. A server receiving an opcode it does not know answers
// CodeBadRequest and keeps the connection open — unknown ops are a protocol
// error, not a transport failure.
package wire

import "fmt"

// Op enumerates request frame tags.
type Op uint8

// Request opcodes — see the package table above for payload contracts.
const (
	OpBegin  Op = 1
	OpCommit Op = 2
	OpAbort  Op = 3
	OpGet    Op = 4
	OpInsert Op = 5
	OpUpdate Op = 6
	OpDelete Op = 7
	OpScan   Op = 8
	OpStats  Op = 9

	// OpSubscribe turns the connection into a replication log stream. Request:
	// announce string (the subscriber's client-reachable address, may be
	// empty), shard count u32, then per shard a start LSN u64 (resume cursor).
	// Response: CodeOK {shard count u32, per shard durable LSN u64}, then an
	// unbounded sequence of CodeLogBatch frames until the primary drains. The
	// connection speaks no other ops afterwards.
	OpSubscribe Op = 10
	// OpPromote asks a follower to stop replicating, finish replay, and begin
	// accepting writes. () -> (). Idempotent; rejected on a non-follower.
	OpPromote Op = 11

	// OpSnapshot returns one stable AS OF token per shard; OpBeginAt opens a
	// read-only transaction pinned at such a token vector (time travel).
	OpSnapshot Op = 12
	OpBeginAt  Op = 13

	// Catalog DDL. Auto-committed server-side: each op is durable in the WAL
	// before CodeOK, and replays on crash recovery and on followers.
	OpCreateTable Op = 14
	OpDropTable   Op = 15
	OpCreateIndex Op = 16
	OpDropIndex   Op = 17

	// Typed row operations against catalog tables.
	OpInsertRow   Op = 18
	OpGetRow      Op = 19
	OpUpdateRow   Op = 20
	OpDeleteRow   Op = 21
	OpScanTable   Op = 22
	OpIndexLookup Op = 23
	OpIndexRange  Op = 24
	OpListTables  Op = 25

	// OpReplLSN reports the per-shard LSN vector reads on this server observe
	// (applied positions on a follower, durable positions on a primary). Cheap
	// and admission-exempt: clients probe it before routing a read.
	OpReplLSN Op = 26

	// OpTrace wraps another request in a trace-context envelope: {trace id
	// u64, parent span u64, sampled u8, inner op u8, inner payload}. See the
	// package table; Encode/DecodeTraceEnvelope are the codec.
	OpTrace Op = 27
)

func (o Op) String() string {
	switch o {
	case OpBegin:
		return "BEGIN"
	case OpCommit:
		return "COMMIT"
	case OpAbort:
		return "ABORT"
	case OpGet:
		return "GET"
	case OpInsert:
		return "INSERT"
	case OpUpdate:
		return "UPDATE"
	case OpDelete:
		return "DELETE"
	case OpScan:
		return "SCAN"
	case OpStats:
		return "STATS"
	case OpSubscribe:
		return "SUBSCRIBE"
	case OpPromote:
		return "PROMOTE"
	case OpSnapshot:
		return "SNAPSHOT"
	case OpBeginAt:
		return "BEGIN_AT"
	case OpCreateTable:
		return "CREATE_TABLE"
	case OpDropTable:
		return "DROP_TABLE"
	case OpCreateIndex:
		return "CREATE_INDEX"
	case OpDropIndex:
		return "DROP_INDEX"
	case OpInsertRow:
		return "INSERT_ROW"
	case OpGetRow:
		return "GET_ROW"
	case OpUpdateRow:
		return "UPDATE_ROW"
	case OpDeleteRow:
		return "DELETE_ROW"
	case OpScanTable:
		return "SCAN_TABLE"
	case OpIndexLookup:
		return "INDEX_LOOKUP"
	case OpIndexRange:
		return "INDEX_RANGE"
	case OpListTables:
		return "LIST_TABLES"
	case OpReplLSN:
		return "REPL_LSN"
	case OpTrace:
		return "TRACE"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// Code is a stable wire error code. Codes are part of the protocol: new
// codes may be appended, but existing values never change meaning.
type Code uint8

// Wire codes. CodeOK tags success responses; every other code tags an error
// response whose payload is a human-readable message.
const (
	CodeOK           Code = 0
	CodeNotFound     Code = 1 // key has no visible row
	CodeConflict     Code = 2 // first-updater-wins serialization failure; retry the transaction
	CodeLockTimeout  Code = 3 // lock wait exceeded its budget (possible deadlock)
	CodeTxFinished   Code = 4 // transaction already committed or aborted
	CodeUnknownTx    Code = 5 // handle does not name a live transaction on this connection
	CodeOverloaded   Code = 6 // admission control rejected the request; back off and retry
	CodeShuttingDown Code = 7 // server is draining; reconnect elsewhere/later
	CodeBadRequest   Code = 8 // malformed frame or unknown opcode
	CodeInternal     Code = 9 // unexpected server-side failure

	// CodeLogBatch tags a replication stream frame on a subscribed
	// connection: {shard u32, start LSN u64, primary durable LSN u64, bytes
	// data}. Empty data is a heartbeat carrying only the durable LSN.
	CodeLogBatch Code = 10
	// CodeReadOnly rejects writes on an unpromoted replication follower.
	CodeReadOnly Code = 11

	// Catalog codes.
	CodeExists  Code = 12 // DDL names a table/index that already exists
	CodeNoTable Code = 13 // operation names an unknown table
	CodeNoIndex Code = 14 // operation names an unknown index
)

// CodeBadOp is the stable rejection for opcodes the server does not know
// (ERR_BAD_OP). It aliases CodeBadRequest: an unknown op is a malformed
// request, answered on the same connection rather than by dropping it.
const CodeBadOp = CodeBadRequest

func (c Code) String() string {
	switch c {
	case CodeOK:
		return "OK"
	case CodeNotFound:
		return "NOT_FOUND"
	case CodeConflict:
		return "CONFLICT"
	case CodeLockTimeout:
		return "LOCK_TIMEOUT"
	case CodeTxFinished:
		return "TX_FINISHED"
	case CodeUnknownTx:
		return "UNKNOWN_TX"
	case CodeOverloaded:
		return "OVERLOADED"
	case CodeShuttingDown:
		return "SHUTTING_DOWN"
	case CodeBadRequest:
		return "BAD_REQUEST"
	case CodeInternal:
		return "INTERNAL"
	case CodeLogBatch:
		return "LOG_BATCH"
	case CodeReadOnly:
		return "READ_ONLY"
	case CodeExists:
		return "EXISTS"
	case CodeNoTable:
		return "NO_TABLE"
	case CodeNoIndex:
		return "NO_INDEX"
	}
	return fmt.Sprintf("code(%d)", uint8(c))
}
