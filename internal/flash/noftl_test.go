package flash

import (
	"bytes"
	"errors"
	"testing"

	"sias/internal/simclock"
)

func noftlConfig() Config {
	cfg := DefaultConfig()
	cfg.Blocks = 8
	cfg.PagesPerBlock = 4
	cfg.Channels = 2
	return cfg
}

func TestNoFTLWriteReadRoundtrip(t *testing.T) {
	d := NewNoFTL(noftlConfig(), nil)
	buf := make([]byte, d.PageSize())
	for i := range buf {
		buf[i] = byte(i * 7)
	}
	at, err := d.WritePage(0, 5, buf)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, d.PageSize())
	if _, err := d.ReadPage(at, 5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Error("roundtrip mismatch")
	}
}

func TestNoFTLRewriteRequiresErase(t *testing.T) {
	d := NewNoFTL(noftlConfig(), nil)
	buf := make([]byte, d.PageSize())
	at, _ := d.WritePage(0, 0, buf)
	_, err := d.WritePage(at, 0, buf)
	var ne *ErrNotErased
	if !errors.As(err, &ne) {
		t.Fatalf("rewrite err = %v, want ErrNotErased", err)
	}
	if ne.Page != 0 || ne.Block != 0 {
		t.Errorf("error details: %+v", ne)
	}
	// Erase the block; rewrite succeeds.
	at, err = d.Erase(at, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.WritePage(at, 0, buf); err != nil {
		t.Fatalf("write after erase: %v", err)
	}
	if d.Wear().TotalErases != 1 {
		t.Errorf("erases = %d", d.Wear().TotalErases)
	}
}

func TestNoFTLEraseClearsWholeBlock(t *testing.T) {
	d := NewNoFTL(noftlConfig(), nil)
	buf := make([]byte, d.PageSize())
	buf[0] = 0xEE
	at := simclock.Time(0)
	// Write all 4 pages of block 1 (pages 4..7).
	for p := int64(4); p < 8; p++ {
		at, _ = d.WritePage(at, p, buf)
	}
	at, _ = d.Erase(at, 1)
	got := make([]byte, d.PageSize())
	for p := int64(4); p < 8; p++ {
		at, _ = d.ReadPage(at, p, got)
		if got[0] != 0 {
			t.Errorf("page %d not cleared by erase", p)
		}
		if _, err := d.WritePage(at, p, buf); err != nil {
			t.Errorf("page %d not writable after erase: %v", p, err)
		}
	}
	// Pages outside the block are untouched.
	at, _ = d.WritePage(at, 9, buf)
	if _, err := d.WritePage(at, 9, buf); err == nil {
		t.Error("page 9 should still require erase")
	}
}

func TestNoFTLNoDeviceWriteAmplification(t *testing.T) {
	d := NewNoFTL(noftlConfig(), nil)
	buf := make([]byte, d.PageSize())
	at := simclock.Time(0)
	for p := int64(0); p < d.NumPages(); p++ {
		at, _ = d.WritePage(at, p, buf)
	}
	st := d.Stats()
	if st.WriteAmplification() != 1.0 {
		t.Errorf("WA = %.2f, want exactly 1.0 (no FTL, no relocation)", st.WriteAmplification())
	}
}

func TestNoFTLBlockOf(t *testing.T) {
	d := NewNoFTL(noftlConfig(), nil)
	if d.BlockOf(0) != 0 || d.BlockOf(3) != 0 || d.BlockOf(4) != 1 {
		t.Error("BlockOf mapping wrong")
	}
	if d.PagesPerBlock() != 4 {
		t.Error("PagesPerBlock wrong")
	}
}
