package flash

import (
	"fmt"
	"sync"

	"sias/internal/device"
	"sias/internal/simclock"
	"sias/internal/trace"
)

// NoFTL is the FTL-less flash device of the paper's discussion section
// (Section 6, citing the authors' NoFTL line of work [22]): the DBMS gets
// direct access to flash pages and *owns* erase decisions, instead of hiding
// them behind a translation layer.
//
// Semantics:
//
//   - logical page == physical page (no mapping, no device-side GC, no
//     device-side write amplification);
//   - a page can only be programmed if its erase block has been erased since
//     the page was last written — writing a dirty page returns
//     ErrNotErased, surfacing the flash constraint to the caller;
//   - Erase(block) erases one block explicitly, charging the erase latency
//     and wear.
//
// SIAS is a natural fit: its storage manager already writes append-only and
// reclaims whole pages, so the engine's GC can simply erase the reclaimed
// region — deterministic, with no background outliers. The in-place SI
// baseline cannot run on NoFTL at all (its invalidation writes would need a
// read-modify-erase-rewrite cycle), which is the point of the comparison.
type NoFTL struct {
	device.StatCounter
	cfg      Config
	channels *simclock.Resource
	tracer   *trace.Recorder

	mu     sync.Mutex
	data   [][]byte
	dirty  []bool // page programmed since last erase of its block
	erases []int64
}

// ErrNotErased is returned when programming a page whose block has not been
// erased since the page was last written.
type ErrNotErased struct {
	Page  int64
	Block int64
}

func (e *ErrNotErased) Error() string {
	return fmt.Sprintf("flash: page %d (block %d) not erased before rewrite", e.Page, e.Block)
}

// NewNoFTL creates an FTL-less device with the given geometry.
func NewNoFTL(cfg Config, tracer *trace.Recorder) *NoFTL {
	if cfg.PageSize <= 0 || cfg.PagesPerBlock <= 0 || cfg.Blocks <= 0 || cfg.Channels <= 0 {
		panic("flash: invalid NoFTL config")
	}
	n := int64(cfg.Blocks) * int64(cfg.PagesPerBlock)
	return &NoFTL{
		cfg:      cfg,
		channels: simclock.NewResource(cfg.Channels),
		tracer:   tracer,
		data:     make([][]byte, n),
		dirty:    make([]bool, n),
		erases:   make([]int64, cfg.Blocks),
	}
}

// PageSize implements device.BlockDevice.
func (s *NoFTL) PageSize() int { return s.cfg.PageSize }

// NumPages implements device.BlockDevice.
func (s *NoFTL) NumPages() int64 { return int64(s.cfg.Blocks) * int64(s.cfg.PagesPerBlock) }

// PagesPerBlock reports the erase-unit size in pages.
func (s *NoFTL) PagesPerBlock() int { return s.cfg.PagesPerBlock }

// BlockOf reports the erase block containing pageNo.
func (s *NoFTL) BlockOf(pageNo int64) int64 { return pageNo / int64(s.cfg.PagesPerBlock) }

// ReadPage implements device.BlockDevice.
func (s *NoFTL) ReadPage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= s.NumPages() {
		return at, device.ErrOutOfRange
	}
	if len(p) < s.cfg.PageSize {
		return at, fmt.Errorf("flash: read buffer %d < page size %d", len(p), s.cfg.PageSize)
	}
	s.mu.Lock()
	src := s.data[pageNo]
	s.mu.Unlock()
	if src == nil {
		for i := 0; i < s.cfg.PageSize; i++ {
			p[i] = 0
		}
	} else {
		copy(p, src)
	}
	done := s.channels.Acquire(at, s.cfg.ReadLatency)
	s.CountRead(s.cfg.PageSize, done.Sub(at))
	s.tracer.Record(done, trace.Read, pageNo, s.cfg.PageSize)
	return done, nil
}

// WritePage implements device.BlockDevice. Unlike the FTL device, rewriting
// a non-erased page is an error: the flash constraint is the caller's to
// manage.
func (s *NoFTL) WritePage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= s.NumPages() {
		return at, device.ErrOutOfRange
	}
	if len(p) < s.cfg.PageSize {
		return at, fmt.Errorf("flash: write buffer %d < page size %d", len(p), s.cfg.PageSize)
	}
	s.mu.Lock()
	if s.dirty[pageNo] {
		s.mu.Unlock()
		return at, &ErrNotErased{Page: pageNo, Block: s.BlockOf(pageNo)}
	}
	buf := s.data[pageNo]
	if buf == nil {
		buf = make([]byte, s.cfg.PageSize)
		s.data[pageNo] = buf
	}
	copy(buf, p[:s.cfg.PageSize])
	s.dirty[pageNo] = true
	s.mu.Unlock()
	done := s.channels.Acquire(at, s.cfg.WriteLatency)
	s.CountWrite(s.cfg.PageSize, done.Sub(at))
	s.CountPhysWrite(1)
	s.tracer.Record(done, trace.Write, pageNo, s.cfg.PageSize)
	return done, nil
}

// Erase erases one block: all its pages become writable (and read as zero).
// This is the paper's "deterministic process, triggered by the MV-DBMS".
func (s *NoFTL) Erase(at simclock.Time, block int64) (simclock.Time, error) {
	if block < 0 || block >= int64(s.cfg.Blocks) {
		return at, device.ErrOutOfRange
	}
	s.mu.Lock()
	base := block * int64(s.cfg.PagesPerBlock)
	for i := int64(0); i < int64(s.cfg.PagesPerBlock); i++ {
		s.dirty[base+i] = false
		s.data[base+i] = nil
	}
	s.erases[block]++
	s.mu.Unlock()
	done := s.channels.Acquire(at, s.cfg.EraseLatency)
	s.CountErase(1)
	s.tracer.Record(done, trace.Erase, base, 0)
	return done, nil
}

// Wear reports erase counts.
func (s *NoFTL) Wear() Wear {
	s.mu.Lock()
	defer s.mu.Unlock()
	var w Wear
	for _, e := range s.erases {
		w.TotalErases += e
		if e > w.MaxErases {
			w.MaxErases = e
		}
	}
	if len(s.erases) > 0 {
		w.MeanErases = float64(w.TotalErases) / float64(len(s.erases))
	}
	return w
}

var _ device.BlockDevice = (*NoFTL)(nil)

// Eraser is the capability the SIAS engine looks for to issue DBMS-driven
// erases when its garbage collector frees an append region.
type Eraser interface {
	Erase(at simclock.Time, block int64) (simclock.Time, error)
	PagesPerBlock() int
	BlockOf(pageNo int64) int64
}

var _ Eraser = (*NoFTL)(nil)
