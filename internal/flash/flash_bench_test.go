package flash

import (
	"math/rand"
	"testing"

	"sias/internal/simclock"
)

func BenchmarkSequentialWrite(b *testing.B) {
	s := New(DefaultConfig(), nil)
	buf := make([]byte, s.PageSize())
	at := simclock.Time(0)
	n := s.NumPages()
	b.SetBytes(int64(s.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		at, err = s.WritePage(at, int64(i)%n, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRandomOverwrite(b *testing.B) {
	cfg := DefaultConfig()
	cfg.Blocks = 256
	cfg.OverProvision = 32
	s := New(cfg, nil)
	buf := make([]byte, s.PageSize())
	rng := rand.New(rand.NewSource(1))
	at := simclock.Time(0)
	for p := int64(0); p < s.NumPages(); p++ {
		at, _ = s.WritePage(at, p, buf)
	}
	b.SetBytes(int64(s.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		at, err = s.WritePage(at, rng.Int63n(s.NumPages()), buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkRead(b *testing.B) {
	s := New(DefaultConfig(), nil)
	buf := make([]byte, s.PageSize())
	at, _ := s.WritePage(0, 0, buf)
	b.SetBytes(int64(s.PageSize()))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var err error
		at, err = s.ReadPage(at, 0, buf)
		if err != nil {
			b.Fatal(err)
		}
	}
}
