package flash

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"sias/internal/simclock"
	"sias/internal/trace"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.Blocks = 32
	cfg.PagesPerBlock = 8
	cfg.OverProvision = 8
	cfg.Channels = 2
	return cfg
}

func TestReadWriteRoundtrip(t *testing.T) {
	s := New(smallConfig(), nil)
	buf := make([]byte, s.PageSize())
	for i := range buf {
		buf[i] = byte(i)
	}
	if _, err := s.WritePage(0, 5, buf); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, s.PageSize())
	if _, err := s.ReadPage(0, 5, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Error("read back != written")
	}
}

func TestUnwrittenPageReadsZero(t *testing.T) {
	s := New(smallConfig(), nil)
	got := make([]byte, s.PageSize())
	got[0] = 0xFF
	if _, err := s.ReadPage(0, 3, got); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("byte %d = %d, want 0", i, b)
		}
	}
}

func TestOutOfRange(t *testing.T) {
	s := New(smallConfig(), nil)
	buf := make([]byte, s.PageSize())
	if _, err := s.ReadPage(0, s.NumPages(), buf); err == nil {
		t.Error("read past capacity should fail")
	}
	if _, err := s.WritePage(0, -1, buf); err == nil {
		t.Error("negative page should fail")
	}
}

func TestAsymmetry(t *testing.T) {
	cfg := smallConfig()
	s := New(cfg, nil)
	buf := make([]byte, s.PageSize())
	wDone, _ := s.WritePage(0, 0, buf)
	r := New(cfg, nil)
	rDone, _ := r.ReadPage(0, 0, buf)
	if wDone <= rDone {
		t.Errorf("write (%v) should be slower than read (%v)", wDone, rDone)
	}
	ratio := float64(wDone) / float64(rDone)
	if ratio < 5 {
		t.Errorf("read/write asymmetry ratio %.1f, want >= 5", ratio)
	}
}

func TestOverwriteTriggersGCEventually(t *testing.T) {
	cfg := smallConfig()
	s := New(cfg, nil)
	buf := make([]byte, s.PageSize())
	at := simclock.Time(0)
	// Hammer one logical page until the device must erase.
	for i := 0; i < cfg.Blocks*cfg.PagesPerBlock*2; i++ {
		var err error
		at, err = s.WritePage(at, 0, buf)
		if err != nil {
			t.Fatal(err)
		}
	}
	st := s.Stats()
	if st.Erases == 0 {
		t.Error("repeated overwrites must trigger erases")
	}
	if s.Err() != nil {
		t.Errorf("device errored: %v", s.Err())
	}
	w := s.Wear()
	if w.TotalErases != st.Erases {
		t.Errorf("wear erases %d != stats erases %d", w.TotalErases, st.Erases)
	}
}

func TestWriteAmplificationUnderRandomOverwrite(t *testing.T) {
	cfg := smallConfig()
	s := New(cfg, nil)
	buf := make([]byte, s.PageSize())
	rng := rand.New(rand.NewSource(1))
	at := simclock.Time(0)
	// Fill the device, then overwrite randomly: GC must relocate and WA > 1.
	for p := int64(0); p < s.NumPages(); p++ {
		at, _ = s.WritePage(at, p, buf)
	}
	for i := 0; i < 2000; i++ {
		at, _ = s.WritePage(at, rng.Int63n(s.NumPages()), buf)
	}
	st := s.Stats()
	if wa := st.WriteAmplification(); wa <= 1.0 {
		t.Errorf("write amplification = %.2f, want > 1 under random overwrite", wa)
	}
}

// Property: after any sequence of writes, the FTL maps each written logical
// page to a unique physical page.
func TestFTLUniqueMappingProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := smallConfig()
		s := New(cfg, nil)
		rng := rand.New(rand.NewSource(seed))
		buf := make([]byte, s.PageSize())
		at := simclock.Time(0)
		for i := 0; i < 300; i++ {
			at, _ = s.WritePage(at, rng.Int63n(s.NumPages()), buf)
		}
		s.mu.Lock()
		defer s.mu.Unlock()
		seen := map[int64]int64{}
		for lpn, ppn := range s.l2p {
			if ppn == invalidPPN {
				continue
			}
			if prev, dup := seen[ppn]; dup {
				t.Logf("ppn %d claimed by lpn %d and %d", ppn, prev, lpn)
				return false
			}
			seen[ppn] = int64(lpn)
			if s.p2l[ppn] != int64(lpn) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// Property: contents survive arbitrary overwrite patterns (the FTL is a
// placement model; data integrity must be absolute).
func TestContentIntegrityProperty(t *testing.T) {
	f := func(seed int64) bool {
		cfg := smallConfig()
		s := New(cfg, nil)
		rng := rand.New(rand.NewSource(seed))
		want := map[int64]byte{}
		buf := make([]byte, s.PageSize())
		at := simclock.Time(0)
		for i := 0; i < 200; i++ {
			p := rng.Int63n(s.NumPages())
			v := byte(rng.Intn(256))
			for j := range buf {
				buf[j] = v
			}
			at, _ = s.WritePage(at, p, buf)
			want[p] = v
		}
		got := make([]byte, s.PageSize())
		for p, v := range want {
			at, _ = s.ReadPage(at, p, got)
			if got[0] != v || got[len(got)-1] != v {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestTraceRecorded(t *testing.T) {
	rec := trace.New()
	s := New(smallConfig(), rec)
	buf := make([]byte, s.PageSize())
	at, _ := s.WritePage(0, 1, buf)
	s.ReadPage(at, 1, buf)
	sum := rec.Summarize()
	if sum.Writes != 1 || sum.Reads != 1 {
		t.Errorf("trace = %+v, want 1 read 1 write", sum)
	}
	if sum.WriteBytes != int64(s.PageSize()) {
		t.Errorf("WriteBytes = %d", sum.WriteBytes)
	}
}

func TestChannelParallelism(t *testing.T) {
	cfg := smallConfig()
	cfg.Channels = 4
	s := New(cfg, nil)
	buf := make([]byte, s.PageSize())
	// 4 reads issued at t=0 on 4 channels all complete at ReadLatency.
	var last simclock.Time
	for i := int64(0); i < 4; i++ {
		done, _ := s.ReadPage(0, i, buf)
		last = done
	}
	if last != simclock.Time(cfg.ReadLatency) {
		t.Errorf("4 parallel reads finished at %v, want %v", last, cfg.ReadLatency)
	}
	done, _ := s.ReadPage(0, 4, buf)
	if done != simclock.Time(2*cfg.ReadLatency) {
		t.Errorf("5th read should queue: %v", done)
	}
}
