package flash

import (
	"math/rand"
	"testing"

	"sias/internal/simclock"
)

// TestSustainedRandomChurn regression-tests the FTL under long random
// overwrite traffic on a small device: greedy GC must sustain it
// indefinitely (the historical bug abandoned partially-filled relocation
// blocks, silently shrinking capacity until a spurious device-full).
func TestSustainedRandomChurn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Blocks = 256
	cfg.OverProvision = 32
	s := New(cfg, nil)
	buf := make([]byte, s.PageSize())
	at := simclock.Time(0)
	var err error
	for p := int64(0); p < s.NumPages(); p++ {
		at, err = s.WritePage(at, p, buf)
		if err != nil {
			t.Fatalf("fill %d: %v", p, err)
		}
	}
	rng := rand.New(rand.NewSource(42))
	// Several full device turnovers of random overwrites.
	for i := 0; i < 100000; i++ {
		at, err = s.WritePage(at, rng.Int63n(s.NumPages()), buf)
		if err != nil {
			t.Fatalf("overwrite %d: %v", i, err)
		}
	}
	st := s.Stats()
	if wa := st.WriteAmplification(); wa < 1.0 || wa > 20 {
		t.Errorf("write amplification %.2f out of plausible range", wa)
	}
	if s.Err() != nil {
		t.Errorf("sticky device error: %v", s.Err())
	}
}
