// Package flash simulates a NAND flash SSD with a page-level FTL.
//
// The paper's evaluation hardware is the Intel X25-E SLC SSD. The simulator
// reproduces the properties the paper's argument rests on:
//
//   - read/write asymmetry: page reads are roughly an order of magnitude
//     faster than page programs, and block erases are slower still;
//   - erase-before-write: pages cannot be overwritten in place, so every
//     host overwrite of a logical page becomes an out-of-place program plus
//     (eventually) garbage-collection work — the mechanism that punishes
//     SI's small in-place invalidation updates and rewards SIAS's appends;
//   - internal parallelism: multiple channels serve requests concurrently;
//   - endurance: per-block erase counters expose wear.
//
// The FTL uses a page-granular logical-to-physical map with greedy victim
// selection (most invalid pages first) and a configurable GC threshold,
// following the standard design described in Agrawal et al. (USENIX 2008),
// which the paper cites for SSD design tradeoffs.
package flash

import (
	"fmt"
	"sync"

	"sias/internal/device"
	"sias/internal/simclock"
	"sias/internal/trace"
)

// Config describes the simulated SSD geometry and timing.
type Config struct {
	PageSize      int // bytes per flash page; DB pages map 1:1
	PagesPerBlock int // pages per erase block
	Blocks        int // total erase blocks (incl. over-provisioning)
	Channels      int // parallel channels
	OverProvision int // blocks reserved beyond the exported capacity
	ReadLatency   simclock.Duration
	WriteLatency  simclock.Duration
	EraseLatency  simclock.Duration
	GCLowWater    int // GC runs while free blocks < GCLowWater (default 2)
}

// DefaultConfig models an SLC enterprise SSD in the X25-E class:
// 25µs reads, 250µs programs, 1.5ms erases, 64-page blocks, 10 channels.
func DefaultConfig() Config {
	return Config{
		PageSize:      8192,
		PagesPerBlock: 64,
		Blocks:        2048,
		Channels:      10,
		OverProvision: 128,
		ReadLatency:   25 * simclock.Microsecond,
		WriteLatency:  250 * simclock.Microsecond,
		EraseLatency:  1500 * simclock.Microsecond,
		GCLowWater:    2,
	}
}

const (
	invalidPPN = int64(-1)
)

type block struct {
	erases    int64
	validCnt  int
	nextWrite int // next free page index within the block; PagesPerBlock = full
}

// SSD is a simulated flash device implementing device.BlockDevice.
type SSD struct {
	device.StatCounter
	cfg      Config
	channels *simclock.Resource
	tracer   *trace.Recorder

	mu        sync.Mutex
	l2p       []int64  // logical page -> physical page (invalidPPN if unwritten)
	p2l       []int64  // physical page -> logical page (invalidPPN if free/invalid)
	blocks    []block  // per-erase-block state
	freeList  []int    // blocks fully erased and unused
	active    int      // block currently absorbing writes
	data      [][]byte // logical page contents (stored logically: the FTL is a performance model, correctness of contents is independent of placement)
	exported  int64    // logical pages visible to the host
	gcErr     error
	relocated int64 // pages moved by GC (for write amplification)
}

// New creates an SSD. The exported capacity is
// (Blocks-OverProvision)*PagesPerBlock logical pages.
func New(cfg Config, tracer *trace.Recorder) *SSD {
	if cfg.PageSize <= 0 || cfg.PagesPerBlock <= 0 || cfg.Blocks <= 2 || cfg.Channels <= 0 {
		panic("flash: invalid config")
	}
	if cfg.OverProvision <= 0 {
		cfg.OverProvision = cfg.Blocks / 16
		if cfg.OverProvision < 2 {
			cfg.OverProvision = 2
		}
	}
	if cfg.GCLowWater <= 0 {
		cfg.GCLowWater = 2
	}
	physPages := int64(cfg.Blocks) * int64(cfg.PagesPerBlock)
	exported := int64(cfg.Blocks-cfg.OverProvision) * int64(cfg.PagesPerBlock)
	s := &SSD{
		cfg:      cfg,
		channels: simclock.NewResource(cfg.Channels),
		tracer:   tracer,
		l2p:      make([]int64, exported),
		p2l:      make([]int64, physPages),
		blocks:   make([]block, cfg.Blocks),
		data:     make([][]byte, exported),
		exported: exported,
	}
	for i := range s.l2p {
		s.l2p[i] = invalidPPN
	}
	for i := range s.p2l {
		s.p2l[i] = invalidPPN
	}
	for b := cfg.Blocks - 1; b >= 1; b-- {
		s.freeList = append(s.freeList, b)
	}
	s.active = 0
	return s
}

// PageSize implements device.BlockDevice.
func (s *SSD) PageSize() int { return s.cfg.PageSize }

// NumPages implements device.BlockDevice.
func (s *SSD) NumPages() int64 { return s.exported }

// ReadPage implements device.BlockDevice.
func (s *SSD) ReadPage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= s.exported {
		return at, device.ErrOutOfRange
	}
	if len(p) < s.cfg.PageSize {
		return at, fmt.Errorf("flash: read buffer %d < page size %d", len(p), s.cfg.PageSize)
	}
	s.mu.Lock()
	src := s.data[pageNo]
	s.mu.Unlock()
	if src == nil {
		for i := 0; i < s.cfg.PageSize; i++ {
			p[i] = 0
		}
	} else {
		copy(p, src)
	}
	done := s.channels.Acquire(at, s.cfg.ReadLatency)
	s.CountRead(s.cfg.PageSize, done.Sub(at))
	s.tracer.Record(done, trace.Read, pageNo, s.cfg.PageSize)
	return done, nil
}

// WritePage implements device.BlockDevice. Every host write is an
// out-of-place program; when free blocks run low the FTL garbage-collects,
// charging relocation reads/programs and an erase to the same virtual
// timeline as the host request (the "unpredictable performance outlier" the
// paper attributes to device GC).
func (s *SSD) WritePage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= s.exported {
		return at, device.ErrOutOfRange
	}
	if len(p) < s.cfg.PageSize {
		return at, fmt.Errorf("flash: write buffer %d < page size %d", len(p), s.cfg.PageSize)
	}
	s.mu.Lock()
	// Store contents logically.
	buf := s.data[pageNo]
	if buf == nil {
		buf = make([]byte, s.cfg.PageSize)
		s.data[pageNo] = buf
	}
	copy(buf, p[:s.cfg.PageSize])

	extra, perr := s.programLocked(pageNo)
	s.mu.Unlock()
	if perr != nil {
		return at, perr
	}

	service := s.cfg.WriteLatency + extra
	done := s.channels.Acquire(at, service)
	s.CountWrite(s.cfg.PageSize, done.Sub(at))
	s.CountPhysWrite(1)
	s.tracer.Record(done, trace.Write, pageNo, s.cfg.PageSize)
	return done, nil
}

// programLocked performs the FTL bookkeeping for one out-of-place program of
// logical page pageNo and returns the extra virtual time consumed by any
// garbage collection it triggered. Caller holds s.mu.
func (s *SSD) programLocked(pageNo int64) (simclock.Duration, error) {
	var extra simclock.Duration
	// Invalidate the old physical location.
	if old := s.l2p[pageNo]; old != invalidPPN {
		ob := int(old / int64(s.cfg.PagesPerBlock))
		s.p2l[old] = invalidPPN
		s.blocks[ob].validCnt--
	}
	// Ensure the active block has room.
	if s.blocks[s.active].nextWrite >= s.cfg.PagesPerBlock {
		extra += s.advanceActiveLocked()
		if s.gcErr != nil || s.blocks[s.active].nextWrite >= s.cfg.PagesPerBlock {
			if s.gcErr == nil {
				s.gcErr = fmt.Errorf("flash: device full (no erasable blocks)")
			}
			return extra, s.gcErr
		}
	}
	b := &s.blocks[s.active]
	ppn := int64(s.active)*int64(s.cfg.PagesPerBlock) + int64(b.nextWrite)
	b.nextWrite++
	b.validCnt++
	s.l2p[pageNo] = ppn
	s.p2l[ppn] = pageNo
	return extra, nil
}

// advanceActiveLocked picks a new active block from the free list, running
// garbage collection if the list is too short. Returns virtual time spent.
func (s *SSD) advanceActiveLocked() simclock.Duration {
	var extra simclock.Duration
	for len(s.freeList) < s.cfg.GCLowWater {
		d, ok := s.gcOnceLocked()
		extra += d
		if !ok {
			break // no reclaimable block; device is truly full of valid data
		}
	}
	// GC relocation may have installed (and partially filled) a new active
	// block already; keep using it rather than abandoning its free space —
	// abandoned partials would silently shrink capacity until a spurious
	// device-full.
	if s.blocks[s.active].nextWrite < s.cfg.PagesPerBlock {
		return extra
	}
	if len(s.freeList) == 0 {
		// Capacity exhausted: model as a stall plus forced reclaim attempt.
		d, ok := s.gcOnceLocked()
		extra += d
		if !ok || len(s.freeList) == 0 {
			s.gcErr = fmt.Errorf("flash: device full (all %d blocks valid)", s.cfg.Blocks)
			return extra
		}
	}
	n := len(s.freeList) - 1
	s.active = s.freeList[n]
	s.freeList = s.freeList[:n]
	return extra
}

// gcOnceLocked erases the best victim block (greedy: fewest valid pages,
// excluding the active block), relocating its valid pages. Returns the
// virtual time consumed and whether a block was reclaimed.
func (s *SSD) gcOnceLocked() (simclock.Duration, bool) {
	victim := -1
	for i := range s.blocks {
		if i == s.active || s.blocks[i].nextWrite < s.cfg.PagesPerBlock {
			continue // only full blocks are victims
		}
		if victim == -1 || s.blocks[i].validCnt < s.blocks[victim].validCnt {
			victim = i
		}
	}
	if victim == -1 || s.blocks[victim].validCnt == s.cfg.PagesPerBlock {
		return 0, false // nothing reclaimable
	}
	var extra simclock.Duration
	base := int64(victim) * int64(s.cfg.PagesPerBlock)
	for i := 0; i < s.cfg.PagesPerBlock; i++ {
		ppn := base + int64(i)
		lpn := s.p2l[ppn]
		if lpn == invalidPPN {
			continue
		}
		// Relocate: read + program on the device's own time.
		extra += s.cfg.ReadLatency + s.cfg.WriteLatency
		s.p2l[ppn] = invalidPPN
		s.blocks[victim].validCnt--
		s.relocated++
		s.CountPhysWrite(1)
		// Program into active block (recursing into advance if needed).
		if s.blocks[s.active].nextWrite >= s.cfg.PagesPerBlock {
			// Mid-GC active exhaustion: steal straight from free list;
			// guaranteed progress because we free victim below.
			if n := len(s.freeList); n > 0 {
				s.active = s.freeList[n-1]
				s.freeList = s.freeList[:n-1]
			} else {
				return extra, false
			}
		}
		b := &s.blocks[s.active]
		nppn := int64(s.active)*int64(s.cfg.PagesPerBlock) + int64(b.nextWrite)
		b.nextWrite++
		b.validCnt++
		s.l2p[lpn] = nppn
		s.p2l[nppn] = lpn
	}
	s.blocks[victim].nextWrite = 0
	s.blocks[victim].erases++
	s.blocks[victim].validCnt = 0
	s.freeList = append(s.freeList, victim)
	s.CountErase(1)
	extra += s.cfg.EraseLatency
	return extra, true
}

// Err reports a sticky device-full condition, if any.
func (s *SSD) Err() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.gcErr
}

// Wear summarizes endurance state: total and max per-block erase counts.
type Wear struct {
	TotalErases int64
	MaxErases   int64
	MeanErases  float64
	Relocated   int64 // pages moved by device GC
}

// Wear returns the endurance snapshot. The paper argues SIAS improves
// endurance by reducing erases; this is the observable.
func (s *SSD) Wear() Wear {
	s.mu.Lock()
	defer s.mu.Unlock()
	var w Wear
	for i := range s.blocks {
		e := s.blocks[i].erases
		w.TotalErases += e
		if e > w.MaxErases {
			w.MaxErases = e
		}
	}
	w.MeanErases = float64(w.TotalErases) / float64(len(s.blocks))
	w.Relocated = s.relocated
	return w
}

var _ device.BlockDevice = (*SSD)(nil)
