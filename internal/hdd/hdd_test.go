package hdd

import (
	"bytes"
	"testing"

	"sias/internal/simclock"
)

func smallConfig() Config {
	cfg := DefaultConfig()
	cfg.NumPages = 1 << 16
	return cfg
}

func TestRoundtrip(t *testing.T) {
	d := New(smallConfig(), nil)
	buf := make([]byte, d.PageSize())
	for i := range buf {
		buf[i] = byte(i * 3)
	}
	at, err := d.WritePage(0, 100, buf)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, d.PageSize())
	if _, err := d.ReadPage(at, 100, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Error("read back != written")
	}
}

func TestSequentialVsRandomCost(t *testing.T) {
	cfg := smallConfig()
	buf := make([]byte, cfg.PageSize)

	seq := New(cfg, nil)
	at := simclock.Time(0)
	for p := int64(0); p < 100; p++ {
		at, _ = seq.WritePage(at, p, buf)
	}
	seqTime := at

	rnd := New(cfg, nil)
	at = 0
	for i := 0; i < 100; i++ {
		// Jump far across the disk each time.
		p := int64((i * 7919) % int(cfg.NumPages))
		at, _ = rnd.WritePage(at, p, buf)
	}
	rndTime := at

	if ratio := float64(rndTime) / float64(seqTime); ratio < 10 {
		t.Errorf("random/sequential cost ratio %.1f, want >= 10", ratio)
	}
}

func TestSymmetricReadWrite(t *testing.T) {
	// Unlike flash, HDD random reads and writes cost the same (the paper
	// notes "random access costs are symmetric").
	cfg := smallConfig()
	buf := make([]byte, cfg.PageSize)

	w := New(cfg, nil)
	wT, _ := w.WritePage(0, 40000, buf)
	r := New(cfg, nil)
	rT, _ := r.ReadPage(0, 40000, buf)
	if wT != rT {
		t.Errorf("random write %v != random read %v", wT, rT)
	}
}

func TestHeadPositionAdvances(t *testing.T) {
	d := New(smallConfig(), nil)
	buf := make([]byte, d.PageSize())
	t0, _ := d.WritePage(0, 40000, buf)  // far seek
	t1, _ := d.WritePage(t0, 40001, buf) // next page: sequential, cheap
	if cost0, cost1 := t0.Sub(0), t1.Sub(t0); cost1 >= cost0 {
		t.Errorf("sequential follow-up (%v) should be cheaper than the seek (%v)", cost1, cost0)
	}
}

func TestStatsAccumulate(t *testing.T) {
	d := New(smallConfig(), nil)
	buf := make([]byte, d.PageSize())
	at, _ := d.WritePage(0, 1, buf)
	at, _ = d.WritePage(at, 2, buf)
	d.ReadPage(at, 1, buf)
	st := d.Stats()
	if st.Writes != 2 || st.Reads != 1 {
		t.Errorf("stats = %+v", st)
	}
	if st.BytesWritten != int64(2*d.PageSize()) {
		t.Errorf("BytesWritten = %d", st.BytesWritten)
	}
	d.ResetStats()
	if d.Stats().Writes != 0 {
		t.Error("ResetStats failed")
	}
}

func TestOutOfRange(t *testing.T) {
	d := New(smallConfig(), nil)
	buf := make([]byte, d.PageSize())
	if _, err := d.ReadPage(0, d.NumPages(), buf); err == nil {
		t.Error("read past capacity should fail")
	}
}
