// Package hdd simulates a spinning disk with a seek + rotation + transfer
// cost model, used to reproduce the paper's HDD experiments (Table 2,
// Seagate ST3320613AS, 7200 rpm).
//
// The model captures the property Table 2 depends on: random access pays a
// seek and half a rotation regardless of direction (symmetric random cost),
// while sequential access pays only transfer time. Under SI the in-place
// invalidations scatter writes across the relation (random), while SIAS
// appends sequentially — so SIAS's I/O stays cheap as long as reads hit the
// buffer cache.
package hdd

import (
	"fmt"
	"sync"

	"sias/internal/device"
	"sias/internal/simclock"
	"sias/internal/trace"
)

// Config describes the simulated disk.
type Config struct {
	PageSize     int
	NumPages     int64
	AvgSeek      simclock.Duration // average seek time (full-stroke/3)
	TrackToTrack simclock.Duration // minimum seek for short distances
	RPM          int               // for rotational latency (half revolution avg)
	TransferMBs  float64           // sustained media transfer rate, MB/s
}

// DefaultConfig models a 7200 rpm 3.5" SATA disk of the ST3320613AS class:
// ~8.5ms average seek, ~1ms track-to-track, ~100 MB/s media rate.
func DefaultConfig() Config {
	return Config{
		PageSize:     8192,
		NumPages:     1 << 22, // 32 GB of 8K pages
		AvgSeek:      8500 * simclock.Microsecond,
		TrackToTrack: 1000 * simclock.Microsecond,
		RPM:          7200,
		TransferMBs:  100,
	}
}

// Disk is a simulated HDD implementing device.BlockDevice. A single head
// resource serializes all requests; cost depends on distance from the
// previous request's position.
type Disk struct {
	device.StatCounter
	cfg    Config
	head   *simclock.Resource
	tracer *trace.Recorder

	mu      sync.Mutex
	pos     int64 // current head position (page number)
	data    map[int64][]byte
	halfRot simclock.Duration
	pageXfr simclock.Duration
}

// New creates a disk.
func New(cfg Config, tracer *trace.Recorder) *Disk {
	if cfg.PageSize <= 0 || cfg.NumPages <= 0 || cfg.RPM <= 0 || cfg.TransferMBs <= 0 {
		panic("hdd: invalid config")
	}
	halfRot := simclock.Duration(float64(simclock.Minute) / float64(cfg.RPM) / 2)
	pageXfr := simclock.Duration(float64(cfg.PageSize) / (cfg.TransferMBs * (1 << 20)) * float64(simclock.Second))
	return &Disk{
		cfg:     cfg,
		head:    simclock.NewResource(1),
		tracer:  tracer,
		data:    make(map[int64][]byte),
		halfRot: halfRot,
		pageXfr: pageXfr,
	}
}

// PageSize implements device.BlockDevice.
func (d *Disk) PageSize() int { return d.cfg.PageSize }

// NumPages implements device.BlockDevice.
func (d *Disk) NumPages() int64 { return d.cfg.NumPages }

// serviceTime computes the positioning + transfer cost of accessing pageNo
// given the current head position, and advances the head. Caller holds d.mu.
func (d *Disk) serviceTime(pageNo int64) simclock.Duration {
	dist := pageNo - d.pos
	if dist < 0 {
		dist = -dist
	}
	var svc simclock.Duration
	switch {
	case dist == 0 || dist == 1:
		// Sequential: transfer only (next page passes under the head).
		svc = d.pageXfr
	case dist < 256:
		// Short hop: track-to-track seek + half rotation.
		svc = d.cfg.TrackToTrack + d.halfRot + d.pageXfr
	default:
		// Random: seek scaled by distance up to average + half rotation.
		frac := float64(dist) / float64(d.cfg.NumPages)
		if frac > 1 {
			frac = 1
		}
		seek := d.cfg.TrackToTrack + simclock.Duration(frac*3*float64(d.cfg.AvgSeek-d.cfg.TrackToTrack))
		if seek > 3*d.cfg.AvgSeek {
			seek = 3 * d.cfg.AvgSeek
		}
		svc = seek + d.halfRot + d.pageXfr
	}
	d.pos = pageNo + 1
	return svc
}

// ReadPage implements device.BlockDevice.
func (d *Disk) ReadPage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= d.cfg.NumPages {
		return at, device.ErrOutOfRange
	}
	if len(p) < d.cfg.PageSize {
		return at, fmt.Errorf("hdd: read buffer %d < page size %d", len(p), d.cfg.PageSize)
	}
	d.mu.Lock()
	src := d.data[pageNo]
	svc := d.serviceTime(pageNo)
	d.mu.Unlock()
	if src == nil {
		for i := 0; i < d.cfg.PageSize; i++ {
			p[i] = 0
		}
	} else {
		copy(p, src)
	}
	done := d.head.Acquire(at, svc)
	d.CountRead(d.cfg.PageSize, done.Sub(at))
	d.tracer.Record(done, trace.Read, pageNo, d.cfg.PageSize)
	return done, nil
}

// WritePage implements device.BlockDevice.
func (d *Disk) WritePage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= d.cfg.NumPages {
		return at, device.ErrOutOfRange
	}
	if len(p) < d.cfg.PageSize {
		return at, fmt.Errorf("hdd: write buffer %d < page size %d", len(p), d.cfg.PageSize)
	}
	d.mu.Lock()
	buf := d.data[pageNo]
	if buf == nil {
		buf = make([]byte, d.cfg.PageSize)
		d.data[pageNo] = buf
	}
	copy(buf, p[:d.cfg.PageSize])
	svc := d.serviceTime(pageNo)
	d.mu.Unlock()
	done := d.head.Acquire(at, svc)
	d.CountWrite(d.cfg.PageSize, done.Sub(at))
	d.tracer.Record(done, trace.Write, pageNo, d.cfg.PageSize)
	return done, nil
}

var _ device.BlockDevice = (*Disk)(nil)
