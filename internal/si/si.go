// Package si implements the baseline storage engine: classical Snapshot
// Isolation with in-place invalidation, as in the unmodified PostgreSQL the
// paper compares against.
//
// Every tuple version carries xmin (creating transaction) and xmax
// (invalidating transaction). An update (a) writes the new version to *any*
// page with enough free space — scattering writes across the relation — and
// (b) sets xmax and the forward ctid link on the old version *in place*,
// which dirties the old version's page. Both effects produce the random
// write pattern of Figure 4 and the write volume of Table 1's SI column.
//
// The primary index stores <key, TID> records and, as in pre-HOT PostgreSQL,
// every new version gets a fresh index entry even when the key is unchanged.
// Vacuum reclaims versions invalidated before the transaction horizon.
package si

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"sias/internal/buffer"
	"sias/internal/index"
	"sias/internal/page"
	"sias/internal/simclock"
	"sias/internal/space"
	"sias/internal/tuple"
	"sias/internal/txn"
	"sias/internal/wal"
)

// ErrNotFound is returned when no visible version exists for a key.
var ErrNotFound = errors.New("si: no visible tuple for key")

// SecondaryKey derives a secondary index key from a payload; ok=false means
// "do not index this row".
type SecondaryKey func(payload []byte) (int64, bool)

// Stats counts engine-level events.
type Stats struct {
	VersionsCreated int64
	InPlaceUpdates  int64 // xmax/ctid invalidations written into existing pages
	IndexInserts    int64
	IndexLookups    int64 // secondary-index point and range lookups
	VacuumedTuples  int64
}

// Relation is one SI-managed table: heap + primary index + secondaries.
type Relation struct {
	id    uint32
	name  string
	pool  *buffer.Pool
	alloc *space.Allocator
	walw  *wal.Writer
	txm   *txn.Manager

	pk     *index.Tree
	secs   []*index.Tree
	secFns []SecondaryKey
	retain txn.ID // inline-pruning slack; see Config.Retain

	// mu is a reader/writer lock: Get/Scan/RangeByKey/SearchSecondary take
	// it shared (page bytes they touch are additionally bracketed by frame
	// latches), while every mutating path — Insert, Update, Delete, Vacuum,
	// recovery — takes it exclusively, so the FSM, stats and in-place
	// xmax/ctid rewrites never race with readers.
	mu        sync.RWMutex
	nextBlock uint32
	// fsm tracks free bytes per block (indexed by block number); fsmHint is
	// the lowest block that might still fit a typical tuple, advanced as
	// blocks fill and reset when vacuum frees space.
	fsm     []int
	fsmHint uint32
	stats   Stats

	// idxLookups is atomic, not mu-guarded: lookups run under the shared
	// lock, so concurrent readers may bump it simultaneously.
	idxLookups atomic.Int64
}

// Config wires a Relation to its substrates.
type Config struct {
	ID    uint32
	Name  string
	Pool  *buffer.Pool
	Alloc *space.Allocator
	WAL   *wal.Writer
	Txns  *txn.Manager
	// PKRelID is the relation id for the primary index's pages.
	PKRelID uint32
	// Retain holds opportunistic pruning back by this many transaction ids,
	// mirroring the engine's GC retention window: superseded versions younger
	// than the window survive inline pruning so unpinned AS OF snapshot
	// tokens stay resolvable. Vacuum is bounded separately, by the horizon
	// its caller passes.
	Retain txn.ID
}

// New creates an empty SI relation with its primary index.
func New(at simclock.Time, cfg Config) (*Relation, simclock.Time, error) {
	pk, t, err := index.New(at, cfg.PKRelID, cfg.Pool, cfg.Alloc)
	if err != nil {
		return nil, t, err
	}
	return &Relation{
		id:     cfg.ID,
		name:   cfg.Name,
		pool:   cfg.Pool,
		alloc:  cfg.Alloc,
		walw:   cfg.WAL,
		txm:    cfg.Txns,
		pk:     pk,
		retain: cfg.Retain,
	}, t, nil
}

// pruneHorizon bounds inline (HOT-style) pruning: the transaction manager's
// horizon held back by the retention window, so recently superseded versions
// survive for AS OF reads even though no live snapshot needs them.
func (r *Relation) pruneHorizon() txn.ID {
	h := r.txm.Horizon()
	if r.retain > 0 {
		if h > r.retain {
			h -= r.retain
		} else {
			h = 1 // ids start at 1: retain everything
		}
	}
	return h
}

// AddSecondary attaches a secondary index (entries maintained on every new
// version, the pre-HOT PostgreSQL behaviour).
func (r *Relation) AddSecondary(at simclock.Time, relID uint32, fn SecondaryKey) (simclock.Time, error) {
	t, tm, err := index.New(at, relID, r.pool, r.alloc)
	if err != nil {
		return tm, err
	}
	r.mu.Lock()
	r.secs = append(r.secs, t)
	r.secFns = append(r.secFns, fn)
	r.mu.Unlock()
	return tm, nil
}

// DropSecondary detaches secondary index idx. The slot is tombstoned with a
// nil entry so other indexes keep their positions; the tree's pages are
// abandoned, not reclaimed.
func (r *Relation) DropSecondary(idx int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if idx < 0 || idx >= len(r.secs) || r.secs[idx] == nil {
		return fmt.Errorf("si: no secondary index %d", idx)
	}
	r.secs[idx], r.secFns[idx] = nil, nil
	return nil
}

// SecondaryPageWrites reports how many pages secondary index idx has
// dirtied (0 when idx is out of range or dropped).
func (r *Relation) SecondaryPageWrites(idx int) int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if idx < 0 || idx >= len(r.secs) || r.secs[idx] == nil {
		return 0
	}
	return r.secs[idx].PageWrites()
}

// PKEntries reports the primary index entry count (>= live rows: SI inserts
// a fresh entry per version; vacuum prunes them lazily).
func (r *Relation) PKEntries() int64 { return r.pk.Len() }

// SecondaryEntries sums entry counts across live secondary indexes.
func (r *Relation) SecondaryEntries() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var n int64
	for _, sec := range r.secs {
		if sec != nil {
			n += sec.Len()
		}
	}
	return n
}

// SecondaryInserts sums cumulative insert counts across live secondary
// indexes (rebuild inserts included).
func (r *Relation) SecondaryInserts() int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var n int64
	for _, sec := range r.secs {
		if sec != nil {
			n += sec.Inserts()
		}
	}
	return n
}

// SecondaryCount reports the number of live (non-dropped) secondary indexes.
func (r *Relation) SecondaryCount() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n := 0
	for _, sec := range r.secs {
		if sec != nil {
			n++
		}
	}
	return n
}

// Name returns the relation name.
func (r *Relation) Name() string { return r.name }

// ID returns the heap relation id.
func (r *Relation) ID() uint32 { return r.id }

// Stats returns a snapshot of counters.
func (r *Relation) Stats() Stats {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := r.stats
	s.IndexLookups = r.idxLookups.Load()
	return s
}

// Blocks reports the number of heap blocks allocated.
func (r *Relation) Blocks() uint32 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return r.nextBlock
}

func packTID(t page.TID) uint64   { return uint64(t.Block)<<16 | uint64(t.Slot) }
func unpackTID(v uint64) page.TID { return page.TID{Block: uint32(v >> 16), Slot: uint16(v)} }

// getPage pins the heap page for block, formatting it on first use.
func (r *Relation) getPage(at simclock.Time, block uint32, initNew bool) (*buffer.Frame, simclock.Time, error) {
	dev, err := r.alloc.DevicePage(r.id, block)
	if err != nil {
		return nil, at, err
	}
	f, t, err := r.pool.Get(at, dev, initNew)
	if err != nil {
		return nil, t, err
	}
	if initNew {
		f.Lock()
		f.Data.Init(r.id, 0)
		f.Unlock()
		return f, t, nil
	}
	// Double-checked format: concurrent shared-lock readers may both find a
	// stale frame unformatted; only one may write the header.
	f.RLock()
	inited := f.Data.Initialized()
	f.RUnlock()
	if !inited {
		f.Lock()
		if !f.Data.Initialized() {
			f.Data.Init(r.id, 0)
		}
		f.Unlock()
	}
	return f, t, nil
}

// setFree records the free space of a block in the FSM. Caller holds r.mu.
func (r *Relation) setFree(b uint32, free int) {
	for int(b) >= len(r.fsm) {
		r.fsm = append(r.fsm, -1)
	}
	r.fsm[b] = free
	if free > 0 && b < r.fsmHint {
		r.fsmHint = b
	}
}

// placeVersion writes tupBytes onto the lowest-numbered page with enough
// space ("any page that contains enough free space"), extending the heap if
// none fits. Returns the TID. Caller holds r.mu.
func (r *Relation) placeVersion(tx *txn.Tx, at simclock.Time, tupBytes []byte) (page.TID, simclock.Time, error) {
	need := len(tupBytes) + 8 // line pointer + slack
	// First fit from the hint, lowest block first => scattered placement
	// into vacuumed pages, as in the real system.
	t := at
	for attempt := 0; attempt < 3; attempt++ {
		b := uint32(0)
		isNew := false
		found := false
		for cand := r.fsmHint; int(cand) < len(r.fsm) && cand < r.nextBlock; cand++ {
			if r.fsm[cand] >= need {
				b = cand
				found = true
				break
			}
			// Blocks below the first fit cannot satisfy typical tuples any
			// more only if they are truly tight; advance the hint past
			// near-full blocks to keep the scan amortized O(1).
			if r.fsm[cand] >= 0 && r.fsm[cand] < 64 && cand == r.fsmHint {
				r.fsmHint = cand + 1
			}
		}
		if !found {
			b = r.nextBlock
			isNew = true
		}
		f, t2, err := r.getPage(t, b, isNew)
		t = t2
		if err != nil {
			return page.InvalidTID, t, err
		}
		f.Lock()
		slot, ierr := f.Data.Insert(tupBytes)
		if ierr != nil {
			// Stale FSM entry: refresh and retry.
			r.setFree(b, f.Data.FreeSpace())
			f.Unlock()
			r.pool.Release(f, false)
			if isNew {
				return page.InvalidTID, t, fmt.Errorf("si: tuple of %d bytes does not fit an empty page", len(tupBytes))
			}
			continue
		}
		if isNew {
			r.nextBlock++
		}
		tid := page.TID{Block: b, Slot: uint16(slot)}
		lsn := r.walw.Append(&wal.Record{Type: wal.RecHeapInsert, Tx: tx.ID, Rel: r.id, TID: tid, Data: tupBytes})
		f.Data.SetLSN(uint64(lsn))
		r.setFree(b, f.Data.FreeSpace())
		f.Unlock()
		r.pool.Release(f, true)
		r.stats.VersionsCreated++
		return tid, t, nil
	}
	return page.InvalidTID, t, fmt.Errorf("si: no space found after retries")
}

// fetch reads the version at tid, returning its header and a copy of the
// payload.
func (r *Relation) fetch(at simclock.Time, tid page.TID) (tuple.SIHeader, []byte, simclock.Time, error) {
	f, t, err := r.getPage(at, tid.Block, false)
	if err != nil {
		return tuple.SIHeader{}, nil, t, err
	}
	f.RLock()
	raw, terr := f.Data.Tuple(int(tid.Slot))
	if terr != nil {
		f.RUnlock()
		r.pool.Release(f, false)
		return tuple.SIHeader{}, nil, t, fmt.Errorf("si: fetch %v: %w", tid, terr)
	}
	hdr, payload, derr := tuple.DecodeSI(raw)
	if derr != nil {
		f.RUnlock()
		r.pool.Release(f, false)
		return tuple.SIHeader{}, nil, t, derr
	}
	out := append([]byte(nil), payload...)
	f.RUnlock()
	r.pool.Release(f, false)
	return hdr, out, t, nil
}

// visible implements standard SI visibility: the version's creator must be
// visible and its invalidator (if any) must not be.
func (r *Relation) visible(tx *txn.Tx, hdr tuple.SIHeader) bool {
	if !tx.Visible(hdr.Xmin) {
		return false
	}
	if hdr.Xmax != txn.InvalidID && tx.Visible(hdr.Xmax) {
		return false
	}
	return true
}

// newestLive finds the chain head for key: the committed (or own) version
// with no effective invalidator. Returns ok=false if the key has no live
// version. Caller holds r.mu and the item lock.
//
// While walking the candidates it opportunistically prunes versions that are
// dead to every active snapshot — marking their slots dead and dropping
// their index entries — mirroring PostgreSQL's HOT/page pruning: without it
// hot keys accumulate thousands of dead candidates between vacuum runs and
// every update degenerates to a linear pass over them.
func (r *Relation) newestLive(tx *txn.Tx, at simclock.Time, key int64) (page.TID, tuple.SIHeader, []byte, simclock.Time, bool, error) {
	cands, t, err := r.pk.Search(at, key)
	if err != nil {
		return page.InvalidTID, tuple.SIHeader{}, nil, t, false, err
	}
	horizon := r.pruneHorizon()
	var bestTID page.TID
	var bestHdr tuple.SIHeader
	var bestPayload []byte
	found := false
	var prunable []page.TID
	for _, c := range cands {
		tid := unpackTID(c)
		hdr, payload, t2, err := r.fetch(t, tid)
		t = t2
		if err != nil {
			continue // vacuumed entry; index cleanup is lazy
		}
		st := r.txm.CLOG().Get(hdr.Xmin)
		if st == txn.StatusAborted {
			prunable = append(prunable, tid)
			continue
		}
		if st == txn.StatusInProgress && hdr.Xmin != tx.ID {
			continue // uncommitted foreign insert: not a chain head candidate
		}
		dead := hdr.Xmax != txn.InvalidID && r.txm.CLOG().Get(hdr.Xmax) == txn.StatusCommitted
		if dead {
			if hdr.Xmax < horizon {
				prunable = append(prunable, tid)
			}
			continue
		}
		if hdr.Xmax == tx.ID {
			continue // already superseded within this transaction
		}
		if !found || hdr.Xmin > bestHdr.Xmin {
			bestTID, bestHdr, bestPayload, found = tid, hdr, payload, true
		}
	}
	for _, tid := range prunable {
		var perr error
		t, perr = r.pruneVersion(t, key, tid)
		if perr != nil {
			return page.InvalidTID, tuple.SIHeader{}, nil, t, false, perr
		}
	}
	return bestTID, bestHdr, bestPayload, t, found, nil
}

// pruneVersion removes one dead version: slot marked dead, page compacted,
// index entry dropped. Caller holds r.mu.
func (r *Relation) pruneVersion(at simclock.Time, key int64, tid page.TID) (simclock.Time, error) {
	f, t, err := r.getPage(at, tid.Block, false)
	if err != nil {
		return t, err
	}
	var secPayload []byte
	f.Lock()
	if len(r.secs) > 0 {
		if raw, terr := f.Data.Tuple(int(tid.Slot)); terr == nil {
			if _, payload, derr := tuple.DecodeSI(raw); derr == nil {
				secPayload = append([]byte(nil), payload...)
			}
		}
	}
	if derr := f.Data.MarkDead(int(tid.Slot)); derr != nil {
		f.Unlock()
		r.pool.Release(f, false)
		return t, nil // already gone
	}
	lsn := r.walw.Append(&wal.Record{Type: wal.RecHeapDead, Rel: r.id, TID: tid})
	f.Data.SetLSN(uint64(lsn))
	f.Data.Compact()
	r.setFree(tid.Block, f.Data.FreeSpace())
	f.Unlock()
	r.pool.Release(f, true)
	t, err = r.pk.Delete(t, key, packTID(tid))
	if err != nil && !errors.Is(err, index.ErrNotFound) {
		return t, err
	}
	for i, sec := range r.secs {
		if secPayload == nil {
			break
		}
		if sec == nil {
			continue
		}
		if k, ok := r.secFns[i](secPayload); ok {
			t, err = sec.Delete(t, k, packTID(tid))
			if err != nil && !errors.Is(err, index.ErrNotFound) {
				return t, err
			}
		}
	}
	r.stats.VacuumedTuples++
	return t, nil
}

// Insert stores a new data item under key.
func (r *Relation) Insert(tx *txn.Tx, at simclock.Time, key int64, payload []byte) (simclock.Time, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	tup := tuple.EncodeSI(tuple.SIHeader{Xmin: tx.ID, CTID: page.InvalidTID}, payload)
	tid, t, err := r.placeVersion(tx, at, tup)
	if err != nil {
		return t, err
	}
	t, err = r.pk.Insert(t, key, packTID(tid))
	if err != nil {
		return t, err
	}
	r.stats.IndexInserts++
	for i, sec := range r.secs {
		if sec == nil {
			continue
		}
		if k, ok := r.secFns[i](payload); ok {
			t, err = sec.Insert(t, k, packTID(tid))
			if err != nil {
				return t, err
			}
			r.stats.IndexInserts++
		}
	}
	return t, nil
}

// Get returns the payload of the version of key visible to tx.
func (r *Relation) Get(tx *txn.Tx, at simclock.Time, key int64) ([]byte, simclock.Time, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	cands, t, err := r.pk.Search(at, key)
	if err != nil {
		return nil, t, err
	}
	for _, c := range cands {
		hdr, payload, t2, err := r.fetch(t, unpackTID(c))
		t = t2
		if err != nil {
			continue
		}
		if r.visible(tx, hdr) {
			return payload, t, nil
		}
	}
	return nil, t, ErrNotFound
}

// Update applies mutate to the current version of key, producing a successor
// version; first-updater-wins via the item transaction lock. mutate returns
// the new payload and the (possibly changed) index key.
func (r *Relation) Update(tx *txn.Tx, at simclock.Time, key int64, mutate func(old []byte) ([]byte, int64, error)) (simclock.Time, error) {
	lk := txn.LockKey{Rel: r.id, Item: uint64(key)}
	if err := r.txm.Locks().Acquire(tx, lk); err != nil {
		return at, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()

	oldTID, oldHdr, oldPayload, t, found, err := r.newestLive(tx, at, key)
	if err != nil {
		return t, err
	}
	if !found {
		return t, ErrNotFound
	}
	// First-updater-wins: the chain head must be visible to us; if a
	// concurrent transaction committed a successor we cannot see, abort.
	if !r.visible(tx, oldHdr) {
		return t, txn.ErrSerialization
	}
	newPayload, newKey, err := mutate(oldPayload)
	if err != nil {
		return t, err
	}

	// (a) place the successor version out of place,
	newTup := tuple.EncodeSI(tuple.SIHeader{Xmin: tx.ID, CTID: page.InvalidTID}, newPayload)
	newTID, t, err := r.placeVersion(tx, t, newTup)
	if err != nil {
		return t, err
	}
	// (b) invalidate the predecessor IN PLACE: the small random write SIAS
	// eliminates.
	t, err = r.invalidateInPlace(tx, t, oldTID, tx.ID, newTID)
	if err != nil {
		return t, err
	}
	// (c) new index entries for the new version.
	t, err = r.pk.Insert(t, newKey, packTID(newTID))
	if err != nil {
		return t, err
	}
	r.stats.IndexInserts++
	for i, sec := range r.secs {
		if sec == nil {
			continue
		}
		if k, ok := r.secFns[i](newPayload); ok {
			t, err = sec.Insert(t, k, packTID(newTID))
			if err != nil {
				return t, err
			}
			r.stats.IndexInserts++
		}
	}
	return t, nil
}

// Delete invalidates the current version of key in place (no tombstone
// version is created under SI).
func (r *Relation) Delete(tx *txn.Tx, at simclock.Time, key int64) (simclock.Time, error) {
	lk := txn.LockKey{Rel: r.id, Item: uint64(key)}
	if err := r.txm.Locks().Acquire(tx, lk); err != nil {
		return at, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	tid, hdr, _, t, found, err := r.newestLive(tx, at, key)
	if err != nil {
		return t, err
	}
	if !found {
		return t, ErrNotFound
	}
	if !r.visible(tx, hdr) {
		return t, txn.ErrSerialization
	}
	return r.invalidateInPlace(tx, t, tid, tx.ID, page.InvalidTID)
}

// invalidateInPlace rewrites the version's xmax/ctid on its page.
func (r *Relation) invalidateInPlace(tx *txn.Tx, at simclock.Time, tid page.TID, xmax txn.ID, ctid page.TID) (simclock.Time, error) {
	f, t, err := r.getPage(at, tid.Block, false)
	if err != nil {
		return t, err
	}
	f.Lock()
	raw, terr := f.Data.Tuple(int(tid.Slot))
	if terr != nil {
		f.Unlock()
		r.pool.Release(f, false)
		return t, fmt.Errorf("si: invalidate %v: %w", tid, terr)
	}
	if err := tuple.SetSIXmax(raw, xmax); err != nil {
		f.Unlock()
		r.pool.Release(f, false)
		return t, err
	}
	if err := tuple.SetSICTID(raw, ctid); err != nil {
		f.Unlock()
		r.pool.Release(f, false)
		return t, err
	}
	after := append([]byte(nil), raw...)
	lsn := r.walw.Append(&wal.Record{Type: wal.RecHeapOverwrite, Tx: tx.ID, Rel: r.id, TID: tid, Data: after})
	f.Data.SetLSN(uint64(lsn))
	f.Unlock()
	r.pool.Release(f, true)
	r.stats.InPlaceUpdates++
	return t, nil
}

// Scan performs the traditional full-relation scan: read every block, check
// every tuple version individually (the HDD-era access path the paper
// contrasts with the VIDmap scan).
func (r *Relation) Scan(tx *txn.Tx, at simclock.Time, fn func(payload []byte) bool) (simclock.Time, error) {
	r.mu.RLock()
	blocks := r.nextBlock
	r.mu.RUnlock()
	t := at
	for b := uint32(0); b < blocks; b++ {
		r.mu.RLock()
		f, t2, err := r.getPage(t, b, false)
		if err != nil {
			r.mu.RUnlock()
			return t2, err
		}
		type hit struct{ payload []byte }
		var hits []hit
		f.RLock()
		f.Data.LiveTuples(func(_ int, raw []byte) bool {
			hdr, payload, err := tuple.DecodeSI(raw)
			if err != nil {
				return true
			}
			if r.visible(tx, hdr) {
				hits = append(hits, hit{append([]byte(nil), payload...)})
			}
			return true
		})
		f.RUnlock()
		r.pool.Release(f, false)
		r.mu.RUnlock()
		t = t2
		for _, h := range hits {
			if !fn(h.payload) {
				return t, nil
			}
		}
	}
	return t, nil
}

// RangeByKey returns visible rows with lo <= key <= hi in key order via the
// primary index.
func (r *Relation) RangeByKey(tx *txn.Tx, at simclock.Time, lo, hi int64, fn func(key int64, payload []byte) bool) (simclock.Time, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	type ent struct {
		key int64
		tid page.TID
	}
	var ents []ent
	t, err := r.pk.Range(at, lo, hi, func(k int64, v uint64) bool {
		ents = append(ents, ent{k, unpackTID(v)})
		return true
	})
	if err != nil {
		return t, err
	}
	for _, e := range ents {
		hdr, payload, t2, ferr := r.fetch(t, e.tid)
		t = t2
		if ferr != nil {
			continue // pruned entry
		}
		if !r.visible(tx, hdr) {
			continue
		}
		if !fn(e.key, payload) {
			return t, nil
		}
	}
	return t, nil
}

// SearchSecondary returns payloads of visible versions matching key in
// secondary index idx.
func (r *Relation) SearchSecondary(tx *txn.Tx, at simclock.Time, idx int, key int64) ([][]byte, simclock.Time, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if idx < 0 || idx >= len(r.secs) || r.secs[idx] == nil {
		return nil, at, fmt.Errorf("si: no secondary index %d", idx)
	}
	r.idxLookups.Add(1)
	cands, t, err := r.secs[idx].Search(at, key)
	if err != nil {
		return nil, t, err
	}
	var out [][]byte
	for _, c := range cands {
		hdr, payload, t2, err := r.fetch(t, unpackTID(c))
		t = t2
		if err != nil {
			continue
		}
		if r.visible(tx, hdr) {
			out = append(out, payload)
		}
	}
	return out, t, nil
}

// RangeBySecondary returns visible rows with lo <= secondary key <= hi in
// index-key order. SI indexes every version, so multiple entries can resolve
// to the same visible row under different keys; callers re-check predicates
// against the decoded row.
func (r *Relation) RangeBySecondary(tx *txn.Tx, at simclock.Time, idx int, lo, hi int64, fn func(indexKey int64, payload []byte) bool) (simclock.Time, error) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if idx < 0 || idx >= len(r.secs) || r.secs[idx] == nil {
		return at, fmt.Errorf("si: no secondary index %d", idx)
	}
	r.idxLookups.Add(1)
	type ent struct {
		key int64
		tid page.TID
	}
	var ents []ent
	t, err := r.secs[idx].Range(at, lo, hi, func(k int64, v uint64) bool {
		ents = append(ents, ent{k, unpackTID(v)})
		return true
	})
	if err != nil {
		return t, err
	}
	for _, e := range ents {
		hdr, payload, t2, ferr := r.fetch(t, e.tid)
		t = t2
		if ferr != nil {
			continue // pruned entry
		}
		if !r.visible(tx, hdr) {
			continue
		}
		if !fn(e.key, payload) {
			return t, nil
		}
	}
	return t, nil
}

// Vacuum reclaims versions invalidated before horizon and versions created
// by aborted transactions, marking slots dead, compacting pages and pruning
// index entries (given keyOf to recover the key of a dead payload).
func (r *Relation) Vacuum(at simclock.Time, horizon txn.ID, keyOf func(payload []byte) int64) (int, simclock.Time, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	clog := r.txm.CLOG()
	reclaimed := 0
	t := at
	for b := uint32(0); b < r.nextBlock; b++ {
		f, t2, err := r.getPage(t, b, false)
		t = t2
		if err != nil {
			return reclaimed, t, err
		}
		type victim struct {
			slot    int
			key     int64
			tid     page.TID
			payload []byte
		}
		var victims []victim
		f.RLock()
		f.Data.LiveTuples(func(slot int, raw []byte) bool {
			hdr, payload, err := tuple.DecodeSI(raw)
			if err != nil {
				return true
			}
			deadByUpdate := hdr.Xmax != txn.InvalidID && clog.Get(hdr.Xmax) == txn.StatusCommitted && hdr.Xmax < horizon
			abortedInsert := clog.Get(hdr.Xmin) == txn.StatusAborted
			if deadByUpdate || abortedInsert {
				victims = append(victims, victim{slot, keyOf(payload), page.TID{Block: b, Slot: uint16(slot)}, append([]byte(nil), payload...)})
			}
			return true
		})
		f.RUnlock()
		if len(victims) == 0 {
			r.pool.Release(f, false)
			continue
		}
		f.Lock()
		for _, v := range victims {
			if err := f.Data.MarkDead(v.slot); err != nil {
				f.Unlock()
				r.pool.Release(f, false)
				return reclaimed, t, err
			}
			lsn := r.walw.Append(&wal.Record{Type: wal.RecHeapDead, Rel: r.id, TID: v.tid})
			f.Data.SetLSN(uint64(lsn))
			reclaimed++
		}
		f.Data.Compact()
		r.setFree(b, f.Data.FreeSpace())
		if b < r.fsmHint {
			r.fsmHint = b
		}
		f.Unlock()
		r.pool.Release(f, true)
		r.stats.VacuumedTuples += int64(len(victims))
		// Prune index entries outside the page latch.
		for _, v := range victims {
			t, err = r.pk.Delete(t, v.key, packTID(v.tid))
			if err != nil && !errors.Is(err, index.ErrNotFound) {
				return reclaimed, t, err
			}
			for i, sec := range r.secs {
				if sec == nil {
					continue
				}
				if k, ok := r.secFns[i](v.payload); ok {
					t, err = sec.Delete(t, k, packTID(v.tid))
					if err != nil && !errors.Is(err, index.ErrNotFound) {
						return reclaimed, t, err
					}
				}
			}
		}
	}
	return reclaimed, t, nil
}

// RebuildIndexes repopulates the primary (and secondary) indexes from the
// heap after recovery. keyOf recovers the primary key from a payload.
func (r *Relation) RebuildIndexes(at simclock.Time, keyOf func(payload []byte) int64) (simclock.Time, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	clog := r.txm.CLOG()
	// Drop any entries from a previous rebuild (a replication follower
	// rebuilds repeatedly as replay advances); no-op on first recovery.
	t, err := r.pk.Reset(at)
	if err != nil {
		return t, err
	}
	for _, sec := range r.secs {
		if sec == nil {
			continue
		}
		t, err = sec.Reset(t)
		if err != nil {
			return t, err
		}
	}
	for b := uint32(0); b < r.nextBlock; b++ {
		f, t2, err := r.getPage(t, b, false)
		t = t2
		if err != nil {
			return t, err
		}
		type ent struct {
			key     int64
			tid     page.TID
			payload []byte
		}
		var ents []ent
		f.Data.LiveTuples(func(slot int, raw []byte) bool {
			hdr, payload, err := tuple.DecodeSI(raw)
			if err != nil {
				return true
			}
			if clog.Get(hdr.Xmin) != txn.StatusCommitted {
				return true
			}
			ents = append(ents, ent{keyOf(payload), page.TID{Block: b, Slot: uint16(slot)}, append([]byte(nil), payload...)})
			return true
		})
		r.pool.Release(f, false)
		for _, e := range ents {
			t, err = r.pk.Insert(t, e.key, packTID(e.tid))
			if err != nil {
				return t, err
			}
			for i, sec := range r.secs {
				if sec == nil {
					continue
				}
				if k, ok := r.secFns[i](e.payload); ok {
					t, err = sec.Insert(t, k, packTID(e.tid))
					if err != nil {
						return t, err
					}
				}
			}
		}
	}
	return t, nil
}

// RestoreBlockCount fast-forwards the heap block counter and FSM after WAL
// redo (redo writes pages directly; the in-memory metadata must catch up).
func (r *Relation) RestoreBlockCount(at simclock.Time, blocks uint32) (simclock.Time, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	t := at
	r.nextBlock = blocks
	for b := uint32(0); b < blocks; b++ {
		f, t2, err := r.getPage(t, b, false)
		t = t2
		if err != nil {
			return t, err
		}
		r.setFree(b, f.Data.FreeSpace())
		r.pool.Release(f, false)
	}
	r.fsmHint = 0
	return t, nil
}
