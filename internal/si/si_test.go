package si

import (
	"errors"
	"fmt"
	"testing"

	"sias/internal/buffer"
	"sias/internal/device"
	"sias/internal/page"
	"sias/internal/simclock"
	"sias/internal/space"
	"sias/internal/txn"
	"sias/internal/wal"
)

type env struct {
	dev  *device.Mem
	pool *buffer.Pool
	txm  *txn.Manager
	rel  *Relation
}

func newEnv(t *testing.T) *env {
	t.Helper()
	dev := device.NewMem(page.Size, 1<<16)
	walDev := device.NewMem(page.Size, 1<<14)
	pool := buffer.New(buffer.Config{Frames: 1024, HitCost: 0}, dev)
	alloc := space.NewAllocator(dev.NumPages(), 64)
	walw := wal.NewWriter(walDev)
	txm := txn.NewManager()
	rel, _, err := New(0, Config{ID: 1, Name: "t", Pool: pool, Alloc: alloc, WAL: walw, Txns: txm, PKRelID: 2})
	if err != nil {
		t.Fatal(err)
	}
	return &env{dev, pool, txm, rel}
}

func keyOf(payload []byte) int64 {
	// Tests use single-byte-prefixed payloads "k<NN>...": recover via map.
	var k int64
	fmt.Sscanf(string(payload), "k%d", &k)
	return k
}

func pl(key int64, suffix string) []byte { return []byte(fmt.Sprintf("k%d:%s", key, suffix)) }

func TestInsertGetVisible(t *testing.T) {
	e := newEnv(t)
	tx := e.txm.Begin()
	at, err := e.rel.Insert(tx, 0, 1, pl(1, "a"))
	if err != nil {
		t.Fatal(err)
	}
	got, at, err := e.rel.Get(tx, at, 1)
	if err != nil || string(got) != "k1:a" {
		t.Errorf("own insert: %q %v", got, err)
	}
	e.txm.Commit(tx)
	r := e.txm.Begin()
	if _, _, err := e.rel.Get(r, at, 2); !errors.Is(err, ErrNotFound) {
		t.Errorf("missing key err = %v", err)
	}
	e.txm.Commit(r)
}

func TestUpdateInvalidatesInPlace(t *testing.T) {
	e := newEnv(t)
	tx := e.txm.Begin()
	at, _ := e.rel.Insert(tx, 0, 1, pl(1, "v0"))
	e.txm.Commit(tx)

	before := e.rel.Stats().InPlaceUpdates
	u := e.txm.Begin()
	at, err := e.rel.Update(u, at, 1, func(old []byte) ([]byte, int64, error) {
		return pl(1, "v1"), 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	e.txm.Commit(u)
	if e.rel.Stats().InPlaceUpdates != before+1 {
		t.Error("update must invalidate the old version in place")
	}
	r := e.txm.Begin()
	got, _, err := e.rel.Get(r, at, 1)
	if err != nil || string(got) != "k1:v1" {
		t.Errorf("after update: %q %v", got, err)
	}
	e.txm.Commit(r)
}

func TestSnapshotReadOldVersion(t *testing.T) {
	e := newEnv(t)
	tx := e.txm.Begin()
	at, _ := e.rel.Insert(tx, 0, 1, pl(1, "old"))
	e.txm.Commit(tx)
	reader := e.txm.Begin()
	writer := e.txm.Begin()
	at, _ = e.rel.Update(writer, at, 1, func([]byte) ([]byte, int64, error) {
		return pl(1, "new"), 1, nil
	})
	e.txm.Commit(writer)
	got, _, err := e.rel.Get(reader, at, 1)
	if err != nil || string(got) != "k1:old" {
		t.Errorf("snapshot read = %q, %v; want old", got, err)
	}
	e.txm.Commit(reader)
}

func TestFirstUpdaterWinsSI(t *testing.T) {
	e := newEnv(t)
	tx := e.txm.Begin()
	at, _ := e.rel.Insert(tx, 0, 1, pl(1, "v0"))
	e.txm.Commit(tx)
	t1 := e.txm.Begin()
	t2 := e.txm.Begin()
	at, err := e.rel.Update(t1, at, 1, func([]byte) ([]byte, int64, error) {
		return pl(1, "t1"), 1, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	e.txm.Commit(t1)
	_, err = e.rel.Update(t2, at, 1, func([]byte) ([]byte, int64, error) {
		return pl(1, "t2"), 1, nil
	})
	if !errors.Is(err, txn.ErrSerialization) {
		t.Errorf("err = %v, want ErrSerialization", err)
	}
	e.txm.Abort(t2)
}

func TestDeleteSetsXmax(t *testing.T) {
	e := newEnv(t)
	tx := e.txm.Begin()
	at, _ := e.rel.Insert(tx, 0, 1, pl(1, "x"))
	e.txm.Commit(tx)
	old := e.txm.Begin()
	del := e.txm.Begin()
	at, err := e.rel.Delete(del, at, 1)
	if err != nil {
		t.Fatal(err)
	}
	e.txm.Commit(del)
	// Old snapshot still sees the row (xmax not visible to it).
	if got, _, err := e.rel.Get(old, at, 1); err != nil || string(got) != "k1:x" {
		t.Errorf("old snapshot after delete: %q %v", got, err)
	}
	e.txm.Commit(old)
	fresh := e.txm.Begin()
	if _, _, err := e.rel.Get(fresh, at, 1); !errors.Is(err, ErrNotFound) {
		t.Errorf("fresh read of deleted row: %v", err)
	}
	e.txm.Commit(fresh)
}

func TestScanTraditional(t *testing.T) {
	e := newEnv(t)
	tx := e.txm.Begin()
	at := simclock.Time(0)
	for i := int64(0); i < 15; i++ {
		at, _ = e.rel.Insert(tx, at, i, pl(i, "s"))
	}
	e.txm.Commit(tx)
	r := e.txm.Begin()
	n := 0
	at, err := e.rel.Scan(r, at, func(payload []byte) bool {
		n++
		return true
	})
	if err != nil || n != 15 {
		t.Errorf("scan n=%d err=%v", n, err)
	}
	e.txm.Commit(r)
}

func TestVacuumReclaimsDeadVersions(t *testing.T) {
	e := newEnv(t)
	tx := e.txm.Begin()
	at, _ := e.rel.Insert(tx, 0, 1, pl(1, "v0"))
	e.txm.Commit(tx)
	for i := 1; i <= 10; i++ {
		u := e.txm.Begin()
		at, _ = e.rel.Update(u, at, 1, func([]byte) ([]byte, int64, error) {
			return pl(1, fmt.Sprintf("v%d", i)), 1, nil
		})
		e.txm.Commit(u)
	}
	horizon := e.txm.Horizon()
	_, at, err := e.rel.Vacuum(at, horizon, keyOf)
	if err != nil {
		t.Fatal(err)
	}
	// Opportunistic pruning during the updates plus the explicit vacuum
	// must have reclaimed all 10 superseded versions.
	if got := e.rel.Stats().VacuumedTuples; got != 10 {
		t.Errorf("reclaimed %d versions (prune+vacuum), want 10", got)
	}
	// Current version intact.
	r := e.txm.Begin()
	got, _, err := e.rel.Get(r, at, 1)
	if err != nil || string(got) != "k1:v10" {
		t.Errorf("after vacuum: %q %v", got, err)
	}
	e.txm.Commit(r)
	// Index pruned: exactly one candidate remains.
	if e.rel.pk.Len() != 1 {
		t.Errorf("index entries = %d, want 1", e.rel.pk.Len())
	}
}

func TestVacuumSparesVisibleVersions(t *testing.T) {
	e := newEnv(t)
	tx := e.txm.Begin()
	at, _ := e.rel.Insert(tx, 0, 1, pl(1, "old"))
	e.txm.Commit(tx)
	pinned := e.txm.Begin() // holds horizon
	u := e.txm.Begin()
	at, _ = e.rel.Update(u, at, 1, func([]byte) ([]byte, int64, error) {
		return pl(1, "new"), 1, nil
	})
	e.txm.Commit(u)
	_, at, err := e.rel.Vacuum(at, e.txm.Horizon(), keyOf)
	if err != nil {
		t.Fatal(err)
	}
	got, _, err := e.rel.Get(pinned, at, 1)
	if err != nil || string(got) != "k1:old" {
		t.Errorf("pinned snapshot lost version to vacuum: %q %v", got, err)
	}
	e.txm.Commit(pinned)
}

func TestVacuumRemovesAbortedInserts(t *testing.T) {
	e := newEnv(t)
	tx := e.txm.Begin()
	at, _ := e.rel.Insert(tx, 0, 1, pl(1, "ghost"))
	e.txm.Abort(tx)
	n, _, err := e.rel.Vacuum(at, e.txm.Horizon(), keyOf)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("vacuumed %d, want 1 aborted insert", n)
	}
}

func TestFreeSpaceReuseAfterVacuum(t *testing.T) {
	e := newEnv(t)
	at := simclock.Time(0)
	tx := e.txm.Begin()
	at, _ = e.rel.Insert(tx, at, 1, pl(1, "v"))
	e.txm.Commit(tx)
	// Generate garbage and vacuum it; new versions must reuse block 0
	// (scattered placement into freed space: the random-write pattern).
	for i := 0; i < 200; i++ {
		u := e.txm.Begin()
		at, _ = e.rel.Update(u, at, 1, func([]byte) ([]byte, int64, error) {
			return pl(1, fmt.Sprintf("v%d", i)), 1, nil
		})
		e.txm.Commit(u)
		if i%50 == 49 {
			_, at, _ = e.rel.Vacuum(at, e.txm.Horizon(), keyOf)
		}
	}
	if e.rel.Blocks() > 3 {
		t.Errorf("blocks = %d: vacuum should let SI reuse space", e.rel.Blocks())
	}
}

func TestUpdateAddsIndexEntryEvenWithoutKeyChange(t *testing.T) {
	// Pre-HOT PostgreSQL behaviour the paper compares against: every new
	// version gets an index entry even when the key is unchanged.
	e := newEnv(t)
	tx := e.txm.Begin()
	at, _ := e.rel.Insert(tx, 0, 1, pl(1, "v0"))
	e.txm.Commit(tx)
	before := e.rel.Stats().IndexInserts
	u := e.txm.Begin()
	at, _ = e.rel.Update(u, at, 1, func([]byte) ([]byte, int64, error) {
		return pl(1, "v1"), 1, nil
	})
	e.txm.Commit(u)
	if got := e.rel.Stats().IndexInserts; got != before+1 {
		t.Errorf("index inserts = %d, want %d", got, before+1)
	}
	_ = at
}
