package si

import (
	"errors"

	"sias/internal/index"
	"sias/internal/page"
	"sias/internal/simclock"
	"sias/internal/tuple"
	"sias/internal/wal"
)

// Replica-side incremental apply: a replication follower folds each primary
// WAL record into the FSM and indexes as it replays, so follower reads never
// pay the O(heap) RebuildIndexes/RestoreBlockCount rescan. SI needs no
// per-transaction tracking — visibility is decided entirely by the on-page
// xmin/xmax against the CLOG, which the replicated commit/abort records
// rebuild, and aborted versions are pruned lazily exactly as on the primary
// (the primary's own prune emits RecHeapDead records this side mirrors).
//
// All methods are driven by engine.ApplyRecord, which the repl.Follower
// serializes against reads.

// refreshFreeLocked re-reads a block's free space into the FSM. Caller holds
// r.mu.
func (r *Relation) refreshFreeLocked(at simclock.Time, block uint32) (simclock.Time, error) {
	f, t, err := r.getPage(at, block, false)
	if err != nil {
		return t, err
	}
	f.RLock()
	free := f.Data.FreeSpace()
	f.RUnlock()
	r.pool.Release(f, false)
	r.setFree(block, free)
	return t, nil
}

// ApplyInsert folds one replicated RecHeapInsert into the volatile state
// after the heap redo placed the tuple: heap high-water mark, the block's
// free space, and a fresh <key, TID> entry in the primary and secondary
// indexes — the pre-HOT one-entry-per-version behaviour the live write path
// has. TIDs are never reused before a prune (which deletes the entry), so no
// duplicate guard is needed.
func (r *Relation) ApplyInsert(at simclock.Time, rec *wal.Record, keyOf func(payload []byte) int64) (simclock.Time, error) {
	_, payload, err := tuple.DecodeSI(rec.Data)
	if err != nil {
		return at, err
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if rec.TID.Block+1 > r.nextBlock {
		r.nextBlock = rec.TID.Block + 1
	}
	t, err := r.refreshFreeLocked(at, rec.TID.Block)
	if err != nil {
		return t, err
	}
	r.stats.VersionsCreated++
	t, err = r.pk.Insert(t, keyOf(payload), packTID(rec.TID))
	if err != nil {
		return t, err
	}
	r.stats.IndexInserts++
	for i, sec := range r.secs {
		if sec == nil {
			continue
		}
		if k, ok := r.secFns[i](payload); ok {
			t, err = sec.Insert(t, k, packTID(rec.TID))
			if err != nil {
				return t, err
			}
			r.stats.IndexInserts++
		}
	}
	return t, nil
}

// ApplyPrune drops the index entries of a version the primary pruned or
// vacuumed (RecHeapDead for a single slot). It MUST run before the record's
// heap redo: redo marks the slot dead and compacts the page, destroying the
// payload the index keys are derived from. A slot that is already gone (the
// page reached the device with the prune applied before a crash, so the
// idempotent redo will skip it too) is a no-op.
func (r *Relation) ApplyPrune(at simclock.Time, tid page.TID, keyOf func(payload []byte) int64) (simclock.Time, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f, t, err := r.getPage(at, tid.Block, false)
	if err != nil {
		return t, err
	}
	var payload []byte
	f.RLock()
	if int(tid.Slot) < f.Data.NumSlots() && !f.Data.Dead(int(tid.Slot)) {
		if raw, terr := f.Data.Tuple(int(tid.Slot)); terr == nil {
			if _, p, derr := tuple.DecodeSI(raw); derr == nil {
				payload = append([]byte(nil), p...)
			}
		}
	}
	f.RUnlock()
	r.pool.Release(f, false)
	if payload == nil {
		return t, nil
	}
	t, err = r.pk.Delete(t, keyOf(payload), packTID(tid))
	if err != nil && !errors.Is(err, index.ErrNotFound) {
		return t, err
	}
	for i, sec := range r.secs {
		if sec == nil {
			continue
		}
		if k, ok := r.secFns[i](payload); ok {
			t, err = sec.Delete(t, k, packTID(tid))
			if err != nil && !errors.Is(err, index.ErrNotFound) {
				return t, err
			}
		}
	}
	r.stats.VacuumedTuples++
	return t, nil
}

// ApplyFreeSpace re-reads a block's free space into the FSM after a
// replicated redo changed the page in place (prune compaction, in-place
// invalidation rewrites keep the size so only dead records need this).
func (r *Relation) ApplyFreeSpace(at simclock.Time, block uint32) (simclock.Time, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.refreshFreeLocked(at, block)
}
