package device

import (
	"testing"

	"sias/internal/simclock"
)

func TestSinkDiscardsButAccounts(t *testing.T) {
	s := NewSink(4096, 0, 10*simclock.Microsecond, 100*simclock.Microsecond, 2)
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = 0xFF
	}
	done, err := s.WritePage(0, 12345, buf)
	if err != nil {
		t.Fatal(err)
	}
	if done != simclock.Time(100*simclock.Microsecond) {
		t.Errorf("write done = %v", done)
	}
	// Read back: zeros (content discarded), latency charged.
	got := make([]byte, 4096)
	done2, err := s.ReadPage(done, 12345, got)
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != 0 {
		t.Error("sink must not retain content")
	}
	if done2.Sub(done) != 10*simclock.Microsecond {
		t.Errorf("read latency = %v", done2.Sub(done))
	}
	st := s.Stats()
	if st.Writes != 1 || st.Reads != 1 || st.BytesWritten != 4096 {
		t.Errorf("stats = %+v", st)
	}
}

func TestSinkChannelQueueing(t *testing.T) {
	s := NewSink(4096, 0, 0, 100*simclock.Microsecond, 2)
	buf := make([]byte, 4096)
	var last simclock.Time
	for i := int64(0); i < 4; i++ {
		last, _ = s.WritePage(0, i, buf)
	}
	// 4 writes on 2 channels at t=0: the last completes at 200µs.
	if last != simclock.Time(200*simclock.Microsecond) {
		t.Errorf("4th write done = %v, want 200µs", last)
	}
}

func TestSinkBounds(t *testing.T) {
	s := NewSink(4096, 10, 0, 0, 1)
	buf := make([]byte, 4096)
	if _, err := s.WritePage(0, 10, buf); err != ErrOutOfRange {
		t.Errorf("err = %v", err)
	}
	if _, err := s.ReadPage(0, -1, buf); err != ErrOutOfRange {
		t.Errorf("err = %v", err)
	}
	if _, err := s.WritePage(0, 0, buf[:10]); err == nil {
		t.Error("short buffer should fail")
	}
	// Unbounded sink accepts huge page numbers.
	u := NewSink(4096, 0, 0, 0, 1)
	if _, err := u.WritePage(0, 1<<50, buf); err != nil {
		t.Errorf("unbounded sink rejected page: %v", err)
	}
}
