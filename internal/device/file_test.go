package device

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestFileDeviceRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "dev.img")
	d, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	w := make([]byte, 512)
	for i := range w {
		w[i] = byte(i % 251)
	}
	if _, err := d.WritePage(0, 7, w); err != nil {
		t.Fatal(err)
	}
	r := make([]byte, 512)
	if _, err := d.ReadPage(0, 7, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w, r) {
		t.Fatal("read back different bytes")
	}
	// Unwritten pages read as zeros (sparse file tail).
	if _, err := d.ReadPage(0, 15, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(r, make([]byte, 512)) {
		t.Fatal("unwritten page not zero")
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: data persists across device instances.
	d2, err := OpenFile(path, 512, 16)
	if err != nil {
		t.Fatal(err)
	}
	defer d2.Close()
	if _, err := d2.ReadPage(0, 7, r); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(w, r) {
		t.Fatal("data lost across reopen")
	}
	if _, err := d2.ReadPage(0, 16, r); err != ErrOutOfRange {
		t.Fatalf("out-of-range read: got %v", err)
	}
}
