package device

import (
	"bytes"
	"testing"

	"sias/internal/simclock"
)

func TestMemRoundtrip(t *testing.T) {
	m := NewMem(4096, 16)
	buf := make([]byte, 4096)
	for i := range buf {
		buf[i] = byte(i)
	}
	at, err := m.WritePage(0, 3, buf)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 4096)
	if _, err := m.ReadPage(at, 3, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, buf) {
		t.Error("roundtrip mismatch")
	}
}

func TestMemLatency(t *testing.T) {
	m := NewMemLatency(4096, 16, 5*simclock.Microsecond, 50*simclock.Microsecond)
	buf := make([]byte, 4096)
	done, _ := m.ReadPage(100, 0, buf)
	if done != simclock.Time(100).Add(5*simclock.Microsecond) {
		t.Errorf("read done = %v", done)
	}
	done, _ = m.WritePage(100, 0, buf)
	if done != simclock.Time(100).Add(50*simclock.Microsecond) {
		t.Errorf("write done = %v", done)
	}
}

func TestMemBounds(t *testing.T) {
	m := NewMem(4096, 4)
	buf := make([]byte, 4096)
	if _, err := m.ReadPage(0, 4, buf); err != ErrOutOfRange {
		t.Errorf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := m.WritePage(0, -1, buf); err != ErrOutOfRange {
		t.Errorf("err = %v, want ErrOutOfRange", err)
	}
	if _, err := m.ReadPage(0, 0, buf[:10]); err == nil {
		t.Error("short buffer should fail")
	}
}

func TestRAID0Striping(t *testing.T) {
	m0 := NewMem(4096, 8)
	m1 := NewMem(4096, 8)
	r := NewRAID0(m0, m1)
	if r.NumPages() != 16 {
		t.Fatalf("NumPages = %d, want 16", r.NumPages())
	}
	buf := make([]byte, 4096)
	for p := int64(0); p < 16; p++ {
		buf[0] = byte(p)
		if _, err := r.WritePage(0, p, buf); err != nil {
			t.Fatal(err)
		}
	}
	// Even pages land on member 0, odd on member 1.
	if got := m0.Stats().Writes; got != 8 {
		t.Errorf("member 0 writes = %d, want 8", got)
	}
	if got := m1.Stats().Writes; got != 8 {
		t.Errorf("member 1 writes = %d, want 8", got)
	}
	for p := int64(0); p < 16; p++ {
		if _, err := r.ReadPage(0, p, buf); err != nil {
			t.Fatal(err)
		}
		if buf[0] != byte(p) {
			t.Errorf("page %d content = %d", p, buf[0])
		}
	}
}

func TestRAID0AggregatesStats(t *testing.T) {
	m0 := NewMem(4096, 8)
	m1 := NewMem(4096, 8)
	r := NewRAID0(m0, m1)
	buf := make([]byte, 4096)
	r.WritePage(0, 0, buf)
	r.WritePage(0, 1, buf)
	r.ReadPage(0, 2, buf)
	st := r.Stats()
	if st.Writes != 2 || st.Reads != 1 {
		t.Errorf("aggregate stats = %+v", st)
	}
	r.ResetStats()
	if r.Stats().Writes != 0 {
		t.Error("ResetStats did not propagate")
	}
}

func TestRAID0Bounds(t *testing.T) {
	r := NewRAID0(NewMem(4096, 4))
	buf := make([]byte, 4096)
	if _, err := r.ReadPage(0, 4, buf); err != ErrOutOfRange {
		t.Errorf("err = %v, want ErrOutOfRange", err)
	}
}

func TestStatsWriteAmplification(t *testing.T) {
	s := Stats{Writes: 10, PhysWrites: 25}
	if wa := s.WriteAmplification(); wa != 2.5 {
		t.Errorf("WA = %v, want 2.5", wa)
	}
	if (Stats{}).WriteAmplification() != 0 {
		t.Error("WA of empty stats should be 0")
	}
}

func TestStatsMB(t *testing.T) {
	s := Stats{BytesWritten: 2 << 20, BytesRead: 1 << 20}
	if s.WrittenMB() != 2 || s.ReadMB() != 1 {
		t.Errorf("MB conversions wrong: %v %v", s.WrittenMB(), s.ReadMB())
	}
}
