package device

import (
	"sync/atomic"
	"time"

	"sias/internal/simclock"
)

// Wrap decorates an inner BlockDevice with wall-clock latency injection and
// a per-read hook. It is the test stand-in for a slow device: virtual-time
// latencies (Mem, File) model cost in the simulation arithmetic, but only a
// real time.Sleep makes a lock held across a read hurt on the wall clock —
// which is exactly what the async-miss-path tests and the CI slow-device
// smoke need to observe. The hook doubles as a fault injector (fail the Nth
// read) and a gate (block one read while asserting another proceeds).
//
// Configure ReadDelay/WriteDelay and the hook before sharing the device;
// they are not synchronized against in-flight operations.
type Wrap struct {
	inner      BlockDevice
	ReadDelay  time.Duration
	WriteDelay time.Duration

	// onRead runs before each read op; pageNo is the first page and n the
	// page count (1 for ReadPage). Returning an error fails the op without
	// touching the inner device.
	onRead func(pageNo int64, n int) error

	// onWrite runs before each write op. Returning an error fails the op
	// without touching the inner device — the write-side fault injector
	// (e.g. fail a 2PC commit-decision flush).
	onWrite func(pageNo int64) error

	readOps  atomic.Int64 // host read ops (batched = 1)
	batchOps atomic.Int64 // read ops served via ReadPages with n > 1
}

// NewWrap wraps inner with zero delays and no hook.
func NewWrap(inner BlockDevice) *Wrap { return &Wrap{inner: inner} }

// SetReadHook installs fn; call before the device is shared.
func (w *Wrap) SetReadHook(fn func(pageNo int64, n int) error) { w.onRead = fn }

// SetWriteHook installs fn; call before the device is shared.
func (w *Wrap) SetWriteHook(fn func(pageNo int64) error) { w.onWrite = fn }

// ReadOps reports host read operations issued to the inner device.
func (w *Wrap) ReadOps() int64 { return w.readOps.Load() }

// BatchOps reports how many of those were coalesced multi-page reads.
func (w *Wrap) BatchOps() int64 { return w.batchOps.Load() }

// ReadPage implements BlockDevice.
func (w *Wrap) ReadPage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if w.onRead != nil {
		if err := w.onRead(pageNo, 1); err != nil {
			return at, err
		}
	}
	if w.ReadDelay > 0 {
		time.Sleep(w.ReadDelay)
	}
	w.readOps.Add(1)
	return w.inner.ReadPage(at, pageNo, p)
}

// ReadPages implements PageRangeReader, delegating to the inner device's
// fast path when it has one and looping otherwise. The delay is charged
// once per batch either way — that is the coalescing win being modelled.
func (w *Wrap) ReadPages(at simclock.Time, pageNo int64, n int, p []byte) (simclock.Time, error) {
	if w.onRead != nil {
		if err := w.onRead(pageNo, n); err != nil {
			return at, err
		}
	}
	if w.ReadDelay > 0 {
		time.Sleep(w.ReadDelay)
	}
	w.readOps.Add(1)
	if n > 1 {
		w.batchOps.Add(1)
	}
	if rr, ok := w.inner.(PageRangeReader); ok {
		return rr.ReadPages(at, pageNo, n, p)
	}
	ps := w.inner.PageSize()
	t := at
	for i := 0; i < n; i++ {
		var err error
		t, err = w.inner.ReadPage(t, pageNo+int64(i), p[i*ps:(i+1)*ps])
		if err != nil {
			return t, err
		}
	}
	return t, nil
}

// WritePage implements BlockDevice.
func (w *Wrap) WritePage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if w.onWrite != nil {
		if err := w.onWrite(pageNo); err != nil {
			return at, err
		}
	}
	if w.WriteDelay > 0 {
		time.Sleep(w.WriteDelay)
	}
	return w.inner.WritePage(at, pageNo, p)
}

// PageSize implements BlockDevice.
func (w *Wrap) PageSize() int { return w.inner.PageSize() }

// NumPages implements BlockDevice.
func (w *Wrap) NumPages() int64 { return w.inner.NumPages() }

// Stats implements BlockDevice.
func (w *Wrap) Stats() Stats { return w.inner.Stats() }

// ResetStats implements BlockDevice.
func (w *Wrap) ResetStats() { w.inner.ResetStats() }

var (
	_ BlockDevice     = (*Wrap)(nil)
	_ PageRangeReader = (*Wrap)(nil)
)
