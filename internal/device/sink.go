package device

import (
	"fmt"

	"sias/internal/simclock"
)

// Sink is a timed but contentless device: writes are accounted (latency,
// queueing on parallel channels, statistics, optional trace) and then
// discarded; reads return zeros. It models a write-ahead-log volume in
// experiments — the log's timing matters for group commit, but its contents
// are only ever read by crash recovery, which benchmarks do not exercise.
// Using a sink keeps multi-gigabyte virtual-time runs from retaining every
// logged byte in host memory.
type Sink struct {
	StatCounter
	pageSize int
	numPages int64
	readLat  simclock.Duration
	writeLat simclock.Duration
	channels *simclock.Resource
}

// NewSink returns a sink with the given latencies and channel parallelism.
// numPages <= 0 means effectively unbounded.
func NewSink(pageSize int, numPages int64, readLat, writeLat simclock.Duration, channels int) *Sink {
	if pageSize <= 0 {
		panic("device: invalid sink page size")
	}
	if numPages <= 0 {
		numPages = 1 << 62
	}
	if channels < 1 {
		channels = 1
	}
	return &Sink{
		pageSize: pageSize,
		numPages: numPages,
		readLat:  readLat,
		writeLat: writeLat,
		channels: simclock.NewResource(channels),
	}
}

// PageSize implements BlockDevice.
func (s *Sink) PageSize() int { return s.pageSize }

// NumPages implements BlockDevice.
func (s *Sink) NumPages() int64 { return s.numPages }

// ReadPage implements BlockDevice; the data read is all zeros.
func (s *Sink) ReadPage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= s.numPages {
		return at, ErrOutOfRange
	}
	if len(p) < s.pageSize {
		return at, fmt.Errorf("device: read buffer %d < page size %d", len(p), s.pageSize)
	}
	for i := 0; i < s.pageSize; i++ {
		p[i] = 0
	}
	done := s.channels.Acquire(at, s.readLat)
	s.CountRead(s.pageSize, done.Sub(at))
	return done, nil
}

// WritePage implements BlockDevice; the data is discarded after accounting.
func (s *Sink) WritePage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= s.numPages {
		return at, ErrOutOfRange
	}
	if len(p) < s.pageSize {
		return at, fmt.Errorf("device: write buffer %d < page size %d", len(p), s.pageSize)
	}
	done := s.channels.Acquire(at, s.writeLat)
	s.CountWrite(s.pageSize, done.Sub(at))
	s.CountPhysWrite(1)
	return done, nil
}

var _ BlockDevice = (*Sink)(nil)
