package device

import "sias/internal/simclock"

// RAID0 stripes pages round-robin over a set of member devices, mirroring the
// software stripe RAIDs used in the paper's evaluation (two- and six-SSD
// RAID-0, Figures 5 and 6). Page p lives on member p%n at local page p/n.
//
// RAID0 exposes the union capacity and aggregates member statistics. Member
// devices must share a page size.
type RAID0 struct {
	members []BlockDevice
	pages   int64
	pageSz  int
}

// NewRAID0 composes the given members into a stripe set. It panics if the
// members are empty or disagree on page size, which are configuration errors.
func NewRAID0(members ...BlockDevice) *RAID0 {
	if len(members) == 0 {
		panic("device: RAID0 needs at least one member")
	}
	ps := members[0].PageSize()
	minPages := members[0].NumPages()
	for _, m := range members[1:] {
		if m.PageSize() != ps {
			panic("device: RAID0 members must share a page size")
		}
		if m.NumPages() < minPages {
			minPages = m.NumPages()
		}
	}
	return &RAID0{members: members, pages: minPages * int64(len(members)), pageSz: ps}
}

func (r *RAID0) locate(pageNo int64) (BlockDevice, int64) {
	n := int64(len(r.members))
	return r.members[pageNo%n], pageNo / n
}

// ReadPage implements BlockDevice.
func (r *RAID0) ReadPage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= r.pages {
		return at, ErrOutOfRange
	}
	m, local := r.locate(pageNo)
	return m.ReadPage(at, local, p)
}

// WritePage implements BlockDevice.
func (r *RAID0) WritePage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= r.pages {
		return at, ErrOutOfRange
	}
	m, local := r.locate(pageNo)
	return m.WritePage(at, local, p)
}

// PageSize implements BlockDevice.
func (r *RAID0) PageSize() int { return r.pageSz }

// NumPages implements BlockDevice.
func (r *RAID0) NumPages() int64 { return r.pages }

// Stats aggregates the members' statistics.
func (r *RAID0) Stats() Stats {
	var total Stats
	for _, m := range r.members {
		s := m.Stats()
		total.Reads += s.Reads
		total.Writes += s.Writes
		total.BytesRead += s.BytesRead
		total.BytesWritten += s.BytesWritten
		total.ReadTime += s.ReadTime
		total.WriteTime += s.WriteTime
		total.PhysWrites += s.PhysWrites
		total.Erases += s.Erases
	}
	return total
}

// ResetStats resets every member.
func (r *RAID0) ResetStats() {
	for _, m := range r.members {
		m.ResetStats()
	}
}

var _ BlockDevice = (*RAID0)(nil)
