// Package device defines the block-device abstraction shared by the
// simulated storage backends (flash SSDs, HDDs) and composition layers
// (RAID-0 striping), together with uniform I/O statistics.
//
// All devices operate in virtual time (see internal/simclock): an operation
// takes the caller's current virtual time and returns the virtual time at
// which the operation completes, after queueing behind earlier requests on
// the same internal resource (flash channel, disk head).
package device

import (
	"errors"
	"fmt"
	"sync"

	"sias/internal/simclock"
)

// ErrOutOfRange is returned when a page number is outside the device.
var ErrOutOfRange = errors.New("device: page number out of range")

// BlockDevice is a page-addressed storage device in virtual time.
//
// ReadPage and WritePage transfer exactly PageSize bytes. Both return the
// virtual completion time of the operation; implementations account queueing
// delay behind concurrent requests.
type BlockDevice interface {
	// ReadPage reads page pageNo into p (len(p) >= PageSize).
	ReadPage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error)
	// WritePage writes p (len(p) >= PageSize) to page pageNo.
	WritePage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error)
	// PageSize is the fixed page size in bytes.
	PageSize() int
	// NumPages is the device capacity in pages.
	NumPages() int64
	// Stats returns a snapshot of accumulated I/O statistics.
	Stats() Stats
	// ResetStats zeroes the accumulated statistics (traces are separate).
	ResetStats()
}

// PageRangeReader is the optional batched-read fast path: devices that can
// serve several consecutive pages in one host operation (a single pread on
// file-backed storage) implement it, and the buffer pool's prefetcher
// coalesces adjacent pages onto it. Semantically equivalent to n ReadPage
// calls for pages [pageNo, pageNo+n); p holds n*PageSize bytes. Counts as
// one host read of n pages in Stats.
type PageRangeReader interface {
	ReadPages(at simclock.Time, pageNo int64, n int, p []byte) (simclock.Time, error)
}

// Stats aggregates host-visible I/O issued to a device.
type Stats struct {
	Reads        int64
	Writes       int64
	BytesRead    int64
	BytesWritten int64
	ReadTime     simclock.Duration // summed service+queue time of reads
	WriteTime    simclock.Duration

	// Flash-internal accounting; zero for non-flash devices.
	PhysWrites int64 // physical page programs incl. GC relocation
	Erases     int64 // block erases
}

// WrittenMB reports host write volume in MB (2^20 bytes).
func (s Stats) WrittenMB() float64 { return float64(s.BytesWritten) / (1 << 20) }

// ReadMB reports host read volume in MB.
func (s Stats) ReadMB() float64 { return float64(s.BytesRead) / (1 << 20) }

// WriteAmplification is physical page programs per host page write.
// Returns 0 when no host writes occurred or the device is not flash.
func (s Stats) WriteAmplification() float64 {
	if s.Writes == 0 || s.PhysWrites == 0 {
		return 0
	}
	return float64(s.PhysWrites) / float64(s.Writes)
}

func (s Stats) String() string {
	return fmt.Sprintf("reads=%d (%.1fMB) writes=%d (%.1fMB) physWrites=%d erases=%d WA=%.2f",
		s.Reads, s.ReadMB(), s.Writes, s.WrittenMB(), s.PhysWrites, s.Erases, s.WriteAmplification())
}

// StatCounter is embedded by device implementations to accumulate Stats
// under a mutex.
type StatCounter struct {
	mu sync.Mutex
	s  Stats
}

// CountRead records one host read of n bytes taking d of virtual time.
func (c *StatCounter) CountRead(n int, d simclock.Duration) {
	c.mu.Lock()
	c.s.Reads++
	c.s.BytesRead += int64(n)
	c.s.ReadTime += d
	c.mu.Unlock()
}

// CountWrite records one host write of n bytes taking d of virtual time.
func (c *StatCounter) CountWrite(n int, d simclock.Duration) {
	c.mu.Lock()
	c.s.Writes++
	c.s.BytesWritten += int64(n)
	c.s.WriteTime += d
	c.mu.Unlock()
}

// CountPhysWrite records device-internal page programs.
func (c *StatCounter) CountPhysWrite(n int64) {
	c.mu.Lock()
	c.s.PhysWrites += n
	c.mu.Unlock()
}

// CountErase records device-internal block erases.
func (c *StatCounter) CountErase(n int64) {
	c.mu.Lock()
	c.s.Erases += n
	c.mu.Unlock()
}

// Stats returns a snapshot.
func (c *StatCounter) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.s
}

// ResetStats zeroes the counters.
func (c *StatCounter) ResetStats() {
	c.mu.Lock()
	c.s = Stats{}
	c.mu.Unlock()
}
