package device

import (
	"fmt"
	"os"

	"sias/internal/simclock"
)

// File is a page-addressed block device backed by a real file. It gives the
// network server (cmd/siasserver) durable state that survives process
// restarts: the WAL and heap written here are re-scanned by engine recovery
// on the next start. Virtual-time latencies are configurable like Mem's, so
// the simulation arithmetic stays intact while the bytes land on the host
// filesystem.
type File struct {
	StatCounter
	f           *os.File
	pageSize    int
	numPages    int64
	readLat     simclock.Duration
	writeLat    simclock.Duration
	syncOnWrite bool
}

// OpenFile opens (creating if absent) a file-backed device of numPages pages.
// The file is sparse; unwritten pages read as zeros, matching Mem.
func OpenFile(path string, pageSize int, numPages int64) (*File, error) {
	if pageSize <= 0 || numPages <= 0 {
		return nil, fmt.Errorf("device: invalid File geometry %d x %d", pageSize, numPages)
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("device: open %s: %w", path, err)
	}
	return &File{f: f, pageSize: pageSize, numPages: numPages}, nil
}

// SetLatency configures fixed virtual per-op latencies (default zero).
func (d *File) SetLatency(read, write simclock.Duration) {
	d.readLat = read
	d.writeLat = write
}

// SetSyncOnWrite makes every WritePage fsync, so a page acknowledged as
// written really is on stable storage — the right setting for a WAL device
// serving live traffic, and the regime in which group commit pays: the
// fsync cost is paid once per batch instead of once per transaction.
func (d *File) SetSyncOnWrite(sync bool) { d.syncOnWrite = sync }

// PageSize implements BlockDevice.
func (d *File) PageSize() int { return d.pageSize }

// NumPages implements BlockDevice.
func (d *File) NumPages() int64 { return d.numPages }

// ReadPage implements BlockDevice.
func (d *File) ReadPage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= d.numPages {
		return at, ErrOutOfRange
	}
	if len(p) < d.pageSize {
		return at, fmt.Errorf("device: read buffer %d < page size %d", len(p), d.pageSize)
	}
	n, err := d.f.ReadAt(p[:d.pageSize], pageNo*int64(d.pageSize))
	if err != nil && n < d.pageSize {
		// Short or absent tail: the rest of the page was never written.
		for i := n; i < d.pageSize; i++ {
			p[i] = 0
		}
	}
	done := at.Add(d.readLat)
	d.CountRead(d.pageSize, d.readLat)
	return done, nil
}

// ReadPages implements PageRangeReader: n consecutive pages in one pread.
// This is the prefetcher's coalescing target — one syscall and one latency
// charge instead of n.
func (d *File) ReadPages(at simclock.Time, pageNo int64, n int, p []byte) (simclock.Time, error) {
	if n <= 0 {
		return at, fmt.Errorf("device: ReadPages of %d pages", n)
	}
	if pageNo < 0 || pageNo+int64(n) > d.numPages {
		return at, ErrOutOfRange
	}
	size := n * d.pageSize
	if len(p) < size {
		return at, fmt.Errorf("device: read buffer %d < %d pages", len(p), n)
	}
	nn, err := d.f.ReadAt(p[:size], pageNo*int64(d.pageSize))
	if err != nil && nn < size {
		// Short or absent tail: the rest was never written.
		for i := nn; i < size; i++ {
			p[i] = 0
		}
	}
	done := at.Add(d.readLat)
	d.CountRead(size, d.readLat)
	return done, nil
}

// WritePage implements BlockDevice.
func (d *File) WritePage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= d.numPages {
		return at, ErrOutOfRange
	}
	if len(p) < d.pageSize {
		return at, fmt.Errorf("device: write buffer %d < page size %d", len(p), d.pageSize)
	}
	if _, err := d.f.WriteAt(p[:d.pageSize], pageNo*int64(d.pageSize)); err != nil {
		return at, fmt.Errorf("device: write page %d: %w", pageNo, err)
	}
	if d.syncOnWrite {
		if err := d.f.Sync(); err != nil {
			return at, fmt.Errorf("device: sync page %d: %w", pageNo, err)
		}
	}
	done := at.Add(d.writeLat)
	d.CountWrite(d.pageSize, d.writeLat)
	return done, nil
}

// Sync flushes the file to stable storage.
func (d *File) Sync() error { return d.f.Sync() }

// Close syncs and closes the backing file.
func (d *File) Close() error {
	if err := d.f.Sync(); err != nil {
		d.f.Close()
		return err
	}
	return d.f.Close()
}

var (
	_ BlockDevice     = (*File)(nil)
	_ PageRangeReader = (*File)(nil)
)
