package device

import (
	"fmt"
	"sync"

	"sias/internal/simclock"
)

// Mem is an in-memory block device with fixed (possibly zero) latencies.
// It exists for unit tests and for experiments that want to isolate the
// algorithmic behaviour from any device cost model.
type Mem struct {
	StatCounter
	pageSize int
	numPages int64
	readLat  simclock.Duration
	writeLat simclock.Duration

	mu   sync.Mutex
	data map[int64][]byte
}

// NewMem returns a memory device of numPages pages with zero latency.
func NewMem(pageSize int, numPages int64) *Mem {
	return NewMemLatency(pageSize, numPages, 0, 0)
}

// NewMemLatency returns a memory device with fixed per-op latencies.
func NewMemLatency(pageSize int, numPages int64, readLat, writeLat simclock.Duration) *Mem {
	if pageSize <= 0 || numPages <= 0 {
		panic("device: invalid Mem geometry")
	}
	return &Mem{
		pageSize: pageSize,
		numPages: numPages,
		readLat:  readLat,
		writeLat: writeLat,
		data:     make(map[int64][]byte),
	}
}

// PageSize implements BlockDevice.
func (m *Mem) PageSize() int { return m.pageSize }

// NumPages implements BlockDevice.
func (m *Mem) NumPages() int64 { return m.numPages }

// ReadPage implements BlockDevice.
func (m *Mem) ReadPage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= m.numPages {
		return at, ErrOutOfRange
	}
	if len(p) < m.pageSize {
		return at, fmt.Errorf("device: read buffer %d < page size %d", len(p), m.pageSize)
	}
	// Copy under the lock: a concurrent WritePage mutates the stored buffer
	// in place, so reading it outside the lock would race (a WAL tail reader
	// legitimately reads pages the writer is re-flushing).
	m.mu.Lock()
	if src := m.data[pageNo]; src == nil {
		for i := 0; i < m.pageSize; i++ {
			p[i] = 0
		}
	} else {
		copy(p, src)
	}
	m.mu.Unlock()
	done := at.Add(m.readLat)
	m.CountRead(m.pageSize, m.readLat)
	return done, nil
}

// ReadPages implements PageRangeReader: n consecutive pages as one host
// read, latency charged once.
func (m *Mem) ReadPages(at simclock.Time, pageNo int64, n int, p []byte) (simclock.Time, error) {
	if n <= 0 {
		return at, fmt.Errorf("device: ReadPages of %d pages", n)
	}
	if pageNo < 0 || pageNo+int64(n) > m.numPages {
		return at, ErrOutOfRange
	}
	size := n * m.pageSize
	if len(p) < size {
		return at, fmt.Errorf("device: read buffer %d < %d pages", len(p), n)
	}
	m.mu.Lock()
	for i := 0; i < n; i++ {
		dst := p[i*m.pageSize : (i+1)*m.pageSize]
		if src := m.data[pageNo+int64(i)]; src == nil {
			for j := range dst {
				dst[j] = 0
			}
		} else {
			copy(dst, src)
		}
	}
	m.mu.Unlock()
	done := at.Add(m.readLat)
	m.CountRead(size, m.readLat)
	return done, nil
}

// WritePage implements BlockDevice.
func (m *Mem) WritePage(at simclock.Time, pageNo int64, p []byte) (simclock.Time, error) {
	if pageNo < 0 || pageNo >= m.numPages {
		return at, ErrOutOfRange
	}
	if len(p) < m.pageSize {
		return at, fmt.Errorf("device: write buffer %d < page size %d", len(p), m.pageSize)
	}
	m.mu.Lock()
	buf := m.data[pageNo]
	if buf == nil {
		buf = make([]byte, m.pageSize)
		m.data[pageNo] = buf
	}
	copy(buf, p[:m.pageSize])
	m.mu.Unlock()
	done := at.Add(m.writeLat)
	m.CountWrite(m.pageSize, m.writeLat)
	return done, nil
}

var (
	_ BlockDevice     = (*Mem)(nil)
	_ PageRangeReader = (*Mem)(nil)
)
