package sias_test

import (
	"errors"
	"fmt"

	"sias"
)

// ExampleOpen shows the minimal end-to-end flow: open a SIAS database on
// simulated flash, create a table, and commit a transaction.
func ExampleOpen() {
	db, err := sias.Open(sias.Options{Engine: sias.EngineSIAS, Storage: sias.StorageSSD})
	if err != nil {
		panic(err)
	}
	users, err := db.CreateTable("users", sias.NewSchema(
		sias.Column{Name: "id", Type: sias.TypeInt64},
		sias.Column{Name: "name", Type: sias.TypeString},
	), "id")
	if err != nil {
		panic(err)
	}
	tx := db.Begin()
	if err := users.Insert(tx, sias.Row{int64(1), "ada"}); err != nil {
		panic(err)
	}
	if err := db.Commit(tx); err != nil {
		panic(err)
	}

	tx = db.Begin()
	row, _ := users.Get(tx, 1)
	fmt.Println(row[1])
	db.Commit(tx)
	// Output: ada
}

// ExampleTable_Update demonstrates snapshot isolation: a reader's snapshot
// is unaffected by a concurrent committed update.
func ExampleTable_Update() {
	db, _ := sias.Open(sias.Options{})
	items, _ := db.CreateTable("items", sias.NewSchema(
		sias.Column{Name: "id", Type: sias.TypeInt64},
		sias.Column{Name: "qty", Type: sias.TypeInt64},
	), "id")

	tx := db.Begin()
	items.Insert(tx, sias.Row{int64(1), int64(10)})
	db.Commit(tx)

	reader := db.Begin() // snapshot taken here
	writer := db.Begin()
	items.Update(writer, 1, func(r sias.Row) (sias.Row, error) {
		r[1] = int64(99)
		return r, nil
	})
	db.Commit(writer)

	row, _ := items.Get(reader, 1)
	fmt.Println("reader sees", row[1])
	db.Commit(reader)

	fresh := db.Begin()
	row, _ = items.Get(fresh, 1)
	fmt.Println("fresh sees", row[1])
	db.Commit(fresh)
	// Output:
	// reader sees 10
	// fresh sees 99
}

// ExampleErrSerialization shows first-updater-wins conflict handling: the
// losing transaction aborts and can be retried.
func ExampleErrSerialization() {
	db, _ := sias.Open(sias.Options{})
	t1, _ := db.CreateTable("t", sias.NewSchema(
		sias.Column{Name: "id", Type: sias.TypeInt64},
		sias.Column{Name: "v", Type: sias.TypeInt64},
	), "id")
	setup := db.Begin()
	t1.Insert(setup, sias.Row{int64(1), int64(0)})
	db.Commit(setup)

	a := db.Begin()
	b := db.Begin()
	t1.Update(a, 1, func(r sias.Row) (sias.Row, error) { r[1] = int64(1); return r, nil })
	db.Commit(a)
	err := t1.Update(b, 1, func(r sias.Row) (sias.Row, error) { r[1] = int64(2); return r, nil })
	fmt.Println(errors.Is(err, sias.ErrSerialization))
	db.Abort(b)
	// Output: true
}
