#!/usr/bin/env bash
# bench.sh — reproducible benchmarks for siasserver.
#
# Two modes, selected by BENCH_MODE:
#
#   BENCH_MODE=write (default) — shard-scaling write throughput. For each
#   shard count (default 1 2 4) start a fresh file-backed siasserver, run a
#   warmup pass then a measured cmd/siasload run, repeat BENCH_REPS times
#   and keep the median rep by throughput. Medians land in BENCH_shard.json
#   (ops/s, p50/p99 latency, WAL flushes per commit, WAL page writes) plus
#   the 4-vs-1 speedup. The workload is write-only with page-sized values
#   and a group-commit linger, which makes the WAL journal chain the
#   dominant cost — the regime the sharded layout targets.
#
#   BENCH_MODE=read — read-mix sweep over the lock-striped buffer pool.
#   For read fractions 0/50/95/100 at 1 and 4 shards, run the same
#   closed-loop load against a striped pool (-pool-partitions 8) and the
#   single-mutex baseline (-pool-partitions 1), median of BENCH_REPS reps,
#   into BENCH_read.json. The pool is sized well below the dataset so
#   misses do real device reads under the partition locks: with one mutex
#   every miss pread serializes the whole pool, with stripes only 1/P of
#   it. The JSON records both configurations side by side plus the
#   striped-vs-single speedup at each point of the sweep.
#
#   Read mode then runs a cold-scan phase: load the keyspace, restart the
#   server on the same data dir (so the pool — sized at 1/4 of the heap
#   pages — is stone cold), and measure one full-keyspace scan workload
#   with the readahead pipeline off (-readahead 0) and on
#   (-readahead $BENCH_READAHEAD, default 32). Medians and the
#   readahead-vs-none speedup land in the same BENCH_read.json under
#   "cold_scan_runs".
#
#   BENCH_MODE=repl — read-scaling over a replica fleet. For each follower
#   count (default 0 1 2) start one primary plus that many follower
#   siasservers, wait for the fleet to converge, then run a read-heavy
#   siasload (default read fraction 95%) with -replicas pointing at the
#   followers, so pure-read transactions are LSN-routed to them under the
#   read-your-writes gate. Every server runs with the same -max-inflight
#   admission cap (default 4, well under the worker count), so each
#   server's admission pool models its capacity and the fleet's extra
#   pooled capacity is what is measured — the honest lever on a machine
#   where every process shares the same cores.
#   Medians land in BENCH_repl.json with the replica-read fraction and the
#   followers-vs-primary-only speedup per follower count.
#
# Any siasload or server failure aborts the script with the server log on
# stderr — no partial BENCH JSON is ever written. Override via environment:
#
#   BENCH_REPS=3 BENCH_WORKERS=32 BENCH_TXNS=400 BENCH_VALUE=8000
#   BENCH_KEYS=4096 BENCH_SHARDS="1 2 4" BENCH_ADDR=127.0.0.1:4599
#   BENCH_LINGER=2ms BENCH_READ_FRACS="0 50 95 100"
#   BENCH_METRICS_ADDR=127.0.0.1:4597
#
# Every server runs with -metrics-addr and every measured siasload scrapes
# it, so each per-rep JSON (and therefore the medians picked below) carries
# the server-side op latency and WAL fsync percentiles under "server".
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
MODE="${BENCH_MODE:-write}"
ADDR="${BENCH_ADDR:-127.0.0.1:4599}"
PORT="${ADDR##*:}"
HOST="${ADDR%:*}"
MADDR="${BENCH_METRICS_ADDR:-127.0.0.1:4597}"
REPS="${BENCH_REPS:-3}"
WORKERS="${BENCH_WORKERS:-32}"
LINGER="${BENCH_LINGER:-2ms}"

case "$MODE" in
write)
    TXNS="${BENCH_TXNS:-400}"
    VALUE="${BENCH_VALUE:-8000}"
    KEYS="${BENCH_KEYS:-4096}"
    SHARDS="${BENCH_SHARDS:-1 2 4}"
    POOL=8192
    ;;
read)
    TXNS="${BENCH_TXNS:-300}"
    # 2 rows per 8K page => the 4096-key dataset spans ~2048 heap pages,
    # 4x the 512-frame pool: random reads miss constantly and the miss
    # pread happens under a partition lock.
    VALUE="${BENCH_VALUE:-4000}"
    KEYS="${BENCH_KEYS:-4096}"
    SHARDS="${BENCH_SHARDS:-1 4}"
    READ_FRACS="${BENCH_READ_FRACS:-0 50 95 100}"
    POOL=512
    STRIPES=8 # per-shard stripes for the striped configuration
    READAHEAD="${BENCH_READAHEAD:-32}"
    ;;
repl)
    TXNS="${BENCH_TXNS:-400}"
    VALUE="${BENCH_VALUE:-256}"
    KEYS="${BENCH_KEYS:-4096}"
    SHARDS=1
    READ_FRAC="${BENCH_READ_FRAC:-95}"
    FOLLOWERS="${BENCH_FOLLOWERS:-0 1 2}"
    POOL=8192
    INFLIGHT="${BENCH_REPL_INFLIGHT:-4}"
    ;;
*)
    echo "unknown BENCH_MODE '$MODE' (want write, read or repl)" >&2
    exit 1
    ;;
esac

WORK="$(mktemp -d)"
SERVER_PID=""
FLEET_PIDS=""
cleanup() {
    [ -n "$SERVER_PID" ] && kill -TERM "$SERVER_PID" 2>/dev/null || true
    for pid in $FLEET_PIDS; do kill -TERM "$pid" 2>/dev/null || true; done
    rm -rf "$WORK"
}
trap cleanup EXIT

echo "building binaries..."
# Stamp the build so sias_build_info on the metrics endpoint identifies the
# exact tree a bench run measured.
VERSION="$(cd "$ROOT" && git describe --always --dirty 2>/dev/null || echo dev)"
(cd "$ROOT" && go build -ldflags "-X main.version=$VERSION" -o "$WORK/siasserver" ./cmd/siasserver)
(cd "$ROOT" && go build -o "$WORK/siasload" ./cmd/siasload)

wait_port() { # port
    for _ in $(seq 1 100); do
        if (echo >"/dev/tcp/$HOST/$1") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "server did not come up on $HOST:$1" >&2
    return 1
}

die_with_log() { # message logfile
    echo "BENCH FAILED: $1" >&2
    echo "--- server log tail ---" >&2
    tail -30 "$2" >&2 || true
    exit 1
}

# run_one shards partitions read_frac_pct out_json log
# Starts a fresh file-backed server, preloads+warms up, runs the measured
# load. Any non-zero siasload exit aborts the whole benchmark loudly.
run_one() {
    local shards=$1 parts=$2 frac_pct=$3 out=$4 log=$5
    local data="$WORK/data"
    rm -rf "$data"
    "$WORK/siasserver" -addr "$ADDR" -shards "$shards" -data "$data" \
        -pool "$POOL" -pool-partitions "$parts" -max-inflight 512 \
        -data-pages 524288 -wal-pages 262144 \
        -metrics-addr "$MADDR" \
        -gc-linger "$LINGER" >"$log" 2>&1 &
    SERVER_PID=$!
    wait_port "$PORT" || die_with_log "server never listened" "$log"
    wait_port "${MADDR##*:}" || die_with_log "metrics endpoint never listened" "$log"
    local frac
    frac=$(awk "BEGIN{print $frac_pct/100}")
    # Warmup: preloads the keyspace and touches every code path once so
    # cold-file block allocation is off the measured run.
    "$WORK/siasload" -addr "$ADDR" -workers "$WORKERS" -txns 50 \
        -ops-per-txn 1 -read-frac "$frac" -keys "$KEYS" -value "$VALUE" \
        >/dev/null ||
        die_with_log "warmup siasload exited non-zero (shards=$shards parts=$parts frac=$frac_pct)" "$log"
    "$WORK/siasload" -addr "$ADDR" -workers "$WORKERS" -txns "$TXNS" \
        -ops-per-txn 1 -read-frac "$frac" -keys "$KEYS" -value "$VALUE" \
        -metrics-addr "$MADDR" -json "$out" >/dev/null ||
        die_with_log "measured siasload exited non-zero (shards=$shards parts=$parts frac=$frac_pct)" "$log"
    [ -s "$out" ] || die_with_log "siasload produced no JSON at $out" "$log"
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

# run_cold_scan shards readahead out_json log
# Loads the keyspace, restarts the server on the same data dir so every heap
# page is cold, then measures one full-keyspace scan workload.
run_cold_scan() {
    local shards=$1 ra=$2 out=$3 log=$4
    local data="$WORK/data"
    rm -rf "$data"
    "$WORK/siasserver" -addr "$ADDR" -shards "$shards" -data "$data" \
        -pool "$POOL" -pool-partitions "$STRIPES" -max-inflight 512 \
        -data-pages 524288 -wal-pages 262144 \
        -metrics-addr "$MADDR" -readahead "$ra" \
        -gc-linger "$LINGER" >"$log" 2>&1 &
    SERVER_PID=$!
    wait_port "$PORT" || die_with_log "server never listened (cold-scan load)" "$log"
    "$WORK/siasload" -addr "$ADDR" -workers 8 -txns 1 \
        -ops-per-txn 1 -read-frac 0 -keys "$KEYS" -value "$VALUE" \
        >/dev/null ||
        die_with_log "cold-scan preload exited non-zero (shards=$shards ra=$ra)" "$log"
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
    # Restart on the same data dir: the pool starts empty, the data does not.
    "$WORK/siasserver" -addr "$ADDR" -shards "$shards" -data "$data" \
        -pool "$POOL" -pool-partitions "$STRIPES" -max-inflight 512 \
        -data-pages 524288 -wal-pages 262144 \
        -metrics-addr "$MADDR" -readahead "$ra" \
        -gc-linger "$LINGER" >>"$log" 2>&1 &
    SERVER_PID=$!
    wait_port "$PORT" || die_with_log "server never relistened (cold-scan measure)" "$log"
    wait_port "${MADDR##*:}" || die_with_log "metrics endpoint never listened" "$log"
    "$WORK/siasload" -addr "$ADDR" -workload scan -workers 1 -txns 1 \
        -keys "$KEYS" -value "$VALUE" \
        -metrics-addr "$MADDR" -json "$out" >/dev/null ||
        die_with_log "cold-scan siasload exited non-zero (shards=$shards ra=$ra)" "$log"
    [ -s "$out" ] || die_with_log "scan siasload produced no JSON at $out" "$log"
    kill -TERM "$SERVER_PID" 2>/dev/null || true
    wait "$SERVER_PID" 2>/dev/null || true
    SERVER_PID=""
}

# run_repl followers out_json logdir
# Starts one primary plus N followers on consecutive ports, preloads the
# keyspace, waits for every follower to reach zero replication lag, then
# measures a read-heavy load with -replicas routing (when followers exist).
run_repl() {
    local nfollow=$1 out=$2 logdir=$3
    mkdir -p "$logdir"
    rm -rf "$WORK/repl"
    FLEET_PIDS=""
    "$WORK/siasserver" -addr "$ADDR" -shards "$SHARDS" -data "$WORK/repl/primary" \
        -pool "$POOL" -max-inflight "$INFLIGHT" \
        -data-pages 262144 -wal-pages 131072 \
        -gc-linger "$LINGER" >"$logdir/primary.log" 2>&1 &
    FLEET_PIDS="$!"
    wait_port "$PORT" || die_with_log "primary never listened" "$logdir/primary.log"
    local faddrs=""
    for i in $(seq 1 "$nfollow"); do
        local fport=$((PORT + i))
        "$WORK/siasserver" -addr "$HOST:$fport" -shards "$SHARDS" -data "$WORK/repl/follower-$i" \
            -pool "$POOL" -max-inflight "$INFLIGHT" \
            -data-pages 262144 -wal-pages 131072 \
            -follow "$ADDR" -announce "$HOST:$fport" >"$logdir/follower-$i.log" 2>&1 &
        FLEET_PIDS="$FLEET_PIDS $!"
        wait_port "$fport" || die_with_log "follower $i never listened" "$logdir/follower-$i.log"
        faddrs="${faddrs:+$faddrs,}$HOST:$fport"
    done
    # Warmup: preload the keyspace and touch every code path once.
    "$WORK/siasload" -addr "$ADDR" -workers "$WORKERS" -txns 50 \
        -ops-per-txn 1 -read-frac 0.5 -keys "$KEYS" -value "$VALUE" \
        >/dev/null ||
        die_with_log "repl warmup exited non-zero (followers=$nfollow)" "$logdir/primary.log"
    # Convergence gate: every follower at zero lag before the measured run.
    for i in $(seq 1 "$nfollow"); do
        local fport=$((PORT + i)) converged=""
        for _ in $(seq 1 100); do
            if "$WORK/siasload" -addr "$HOST:$fport" -stats-only -json "$WORK/st.json" 2>/dev/null &&
                python3 -c '
import json, sys
sh = (json.load(open(sys.argv[1])).get("repl") or {}).get("shards") or []
sys.exit(0 if sh and all(s["lag_bytes"] == 0 and s["applied_lsn"] > 0 for s in sh) else 1)' "$WORK/st.json"; then
                converged=1
                break
            fi
            sleep 0.1
        done
        [ -n "$converged" ] || die_with_log "follower $i never converged" "$logdir/follower-$i.log"
    done
    local repflag=()
    [ -n "$faddrs" ] && repflag=(-replicas "$faddrs")
    "$WORK/siasload" -addr "$ADDR" -workers "$WORKERS" -txns "$TXNS" \
        -ops-per-txn 1 -read-frac "$(awk "BEGIN{print $READ_FRAC/100}")" \
        -keys "$KEYS" -value "$VALUE" ${repflag[@]+"${repflag[@]}"} -json "$out" >/dev/null ||
        die_with_log "measured repl siasload exited non-zero (followers=$nfollow)" "$logdir/primary.log"
    [ -s "$out" ] || die_with_log "repl siasload produced no JSON at $out" "$logdir/primary.log"
    for pid in $FLEET_PIDS; do kill -TERM "$pid" 2>/dev/null || true; done
    for pid in $FLEET_PIDS; do wait "$pid" 2>/dev/null || true; done
    FLEET_PIDS=""
}

if [ "$MODE" = write ]; then
    expected=0
    for s in $SHARDS; do
        for rep in $(seq 1 "$REPS"); do
            echo "shards=$s rep=$rep/$REPS ..."
            run_one "$s" 0 0 "$WORK/res_${s}_${rep}.json" "$WORK/server_${s}_${rep}.log"
            expected=$((expected + 1))
        done
    done

    python3 - "$WORK" "$ROOT/BENCH_shard.json" "$expected" <<'EOF'
import glob, json, os, sys

work, out, expected = sys.argv[1], sys.argv[2], int(sys.argv[3])
paths = glob.glob(os.path.join(work, "res_*_*.json"))
if len(paths) != expected:
    sys.exit(f"expected {expected} result files, found {len(paths)}; refusing to write partial {out}")
runs = {}
for path in paths:
    shards = int(os.path.basename(path).split("_")[1])
    runs.setdefault(shards, []).append(json.load(open(path)))

report = {"benchmark": "shard-scaling write throughput", "runs": []}
median = {}
for shards in sorted(runs):
    reps = sorted(runs[shards], key=lambda r: r["txn_per_sec"])
    med = reps[len(reps) // 2]
    median[shards] = med
    e = med["engine"]
    report["runs"].append({
        "shards": shards,
        "reps": len(reps),
        "txn_per_sec": round(med["txn_per_sec"], 1),
        "txn_per_sec_all_reps": [round(r["txn_per_sec"], 1) for r in reps],
        "latency_p50_ms": med["latency"]["p50_ms"],
        "latency_p99_ms": med["latency"]["p99_ms"],
        "wal_flushes_per_commit": round(e["flushes_per_commit"], 4),
        "wal_page_writes": e["wal_page_writes"],
        "group_commit_saved_pct": round(e["group_commit_saved_pct"], 1),
        "server_side": med.get("server"),
        "config": med["config"],
    })
if 1 in median and 4 in median:
    report["speedup_4_vs_1"] = round(
        median[4]["txn_per_sec"] / median[1]["txn_per_sec"], 3)

json.dump(report, open(out, "w"), indent=2)
open(out, "a").write("\n")

print(f"\n{'shards':>6} {'txn/s':>9} {'p50 ms':>8} {'p99 ms':>8} {'fl/commit':>10}")
for r in report["runs"]:
    print(f"{r['shards']:>6} {r['txn_per_sec']:>9.0f} {r['latency_p50_ms']:>8.2f} "
          f"{r['latency_p99_ms']:>8.2f} {r['wal_flushes_per_commit']:>10.4f}")
if "speedup_4_vs_1" in report:
    print(f"\n4-shard speedup over 1 shard: {report['speedup_4_vs_1']:.2f}x")
print(f"wrote {out}")
EOF

elif [ "$MODE" = repl ]; then
    expected=0
    for nf in $FOLLOWERS; do
        for rep in $(seq 1 "$REPS"); do
            echo "followers=$nf rep=$rep/$REPS ..."
            run_repl "$nf" "$WORK/repl_${nf}_${rep}.json" "$WORK/repllog_${nf}_${rep}"
            expected=$((expected + 1))
        done
    done

    python3 - "$WORK" "$ROOT/BENCH_repl.json" "$expected" "$WORKERS" "$INFLIGHT" "$READ_FRAC" <<'EOF'
import glob, json, os, sys

work, out = sys.argv[1], sys.argv[2]
expected, workers, inflight, read_frac = map(int, sys.argv[3:7])
paths = glob.glob(os.path.join(work, "repl_*_*.json"))
if len(paths) != expected:
    sys.exit(f"expected {expected} result files, found {len(paths)}; refusing to write partial {out}")

runs = {}
for path in paths:
    nf = int(os.path.basename(path).split("_")[1])
    runs.setdefault(nf, []).append(json.load(open(path)))

report = {
    "benchmark": "read-scaling replica fleet: LSN-routed reads vs primary-only",
    "workers": workers,
    "max_inflight_per_server": inflight,
    "read_frac_pct": read_frac,
    "runs": [],
}
median = {}
for nf in sorted(runs):
    reps = sorted(runs[nf], key=lambda r: r["txn_per_sec"])
    med = reps[len(reps) // 2]
    median[nf] = med
    entry = {
        "followers": nf,
        "reps": len(reps),
        "txn_per_sec": round(med["txn_per_sec"], 1),
        "txn_per_sec_all_reps": [round(r["txn_per_sec"], 1) for r in reps],
        "latency_p50_ms": med["latency"]["p50_ms"],
        "latency_p99_ms": med["latency"]["p99_ms"],
        "config": med["config"],
    }
    rr = med.get("read_routing")
    if rr:
        entry["replica_reads"] = rr["replica_reads"]
        entry["primary_reads"] = rr["primary_reads"]
        entry["replica_frac"] = round(rr["replica_frac"], 4)
    report["runs"].append(entry)

base = median.get(0)
speed = {}
for nf, med in median.items():
    if nf == 0 or not base or base["txn_per_sec"] <= 0:
        continue
    speed[f"followers_{nf}"] = round(med["txn_per_sec"] / base["txn_per_sec"], 3)
report["speedup_vs_primary_only"] = speed

json.dump(report, open(out, "w"), indent=2)
open(out, "a").write("\n")

print(f"\n{'followers':>9} {'txn/s':>9} {'p99 ms':>8} {'replica%':>9}")
for r in report["runs"]:
    frac = 100 * r.get("replica_frac", 0.0)
    print(f"{r['followers']:>9} {r['txn_per_sec']:>9.0f} {r['latency_p99_ms']:>8.2f} {frac:>8.1f}%")
for k, v in sorted(speed.items()):
    print(f"read throughput {k} over primary-only: {v:.2f}x")
print(f"wrote {out}")
EOF

else # read mode
    expected=0
    for s in $SHARDS; do
        for parts in 1 "$STRIPES"; do
            for frac in $READ_FRACS; do
                for rep in $(seq 1 "$REPS"); do
                    echo "shards=$s partitions=$parts read=$frac% rep=$rep/$REPS ..."
                    run_one "$s" "$parts" "$frac" \
                        "$WORK/read_${s}_${parts}_${frac}_${rep}.json" \
                        "$WORK/server_${s}_${parts}_${frac}_${rep}.log"
                    expected=$((expected + 1))
                done
            done
        done
    done

    cold_expected=0
    for s in $SHARDS; do
        for ra in 0 "$READAHEAD"; do
            for rep in $(seq 1 "$REPS"); do
                echo "cold-scan shards=$s readahead=$ra rep=$rep/$REPS ..."
                run_cold_scan "$s" "$ra" \
                    "$WORK/scan_${s}_${ra}_${rep}.json" \
                    "$WORK/scansrv_${s}_${ra}_${rep}.log"
                cold_expected=$((cold_expected + 1))
            done
        done
    done

    python3 - "$WORK" "$ROOT/BENCH_read.json" "$expected" "$WORKERS" "$POOL" "$STRIPES" "$cold_expected" "$READAHEAD" <<'EOF'
import glob, json, os, sys

work, out = sys.argv[1], sys.argv[2]
expected, workers, pool, stripes, cold_expected, readahead = map(int, sys.argv[3:9])
paths = glob.glob(os.path.join(work, "read_*_*_*_*.json"))
if len(paths) != expected:
    sys.exit(f"expected {expected} result files, found {len(paths)}; refusing to write partial {out}")
scan_paths = glob.glob(os.path.join(work, "scan_*_*_*.json"))
if len(scan_paths) != cold_expected:
    sys.exit(f"expected {cold_expected} cold-scan files, found {len(scan_paths)}; refusing to write partial {out}")

runs = {}
for path in paths:
    s, parts, frac, _ = os.path.basename(path)[5:-5].split("_")
    runs.setdefault((int(s), int(parts), int(frac)), []).append(json.load(open(path)))

report = {
    "benchmark": "read-mix sweep: striped vs single-mutex buffer pool",
    "workers": workers,
    "pool_frames_total": pool,
    "striped_partitions_per_shard": stripes,
    "runs": [],
}
median = {}
for key in sorted(runs):
    shards, parts, frac = key
    reps = sorted(runs[key], key=lambda r: r["txn_per_sec"])
    med = reps[len(reps) // 2]
    median[key] = med
    e = med["engine"]
    report["runs"].append({
        "shards": shards,
        "pool_partitions_per_shard": parts,
        "pool_config": "single-mutex baseline" if parts == 1 else "striped",
        "read_frac": frac,
        "reps": len(reps),
        "txn_per_sec": round(med["txn_per_sec"], 1),
        "txn_per_sec_all_reps": [round(r["txn_per_sec"], 1) for r in reps],
        "latency_p50_ms": med["latency"]["p50_ms"],
        "latency_p99_ms": med["latency"]["p99_ms"],
        "pool_hit_ratio": round(e.get("pool_hit_ratio", 0), 4),
        "pool_evictions": e.get("pool_evictions", 0),
        "server_side": med.get("server"),
        "config": med["config"],
    })

speedups = {}
for (shards, parts, frac), med in median.items():
    if parts == 1:
        continue
    base = median.get((shards, 1, frac))
    if base and base["txn_per_sec"] > 0:
        speedups.setdefault(f"read_frac_{frac}", {})[f"shards_{shards}"] = round(
            med["txn_per_sec"] / base["txn_per_sec"], 3)
report["speedup_striped_vs_single"] = speedups

# Cold-scan phase: one full-keyspace scan against a freshly restarted server
# (pool at 1/4 of the heap pages, every page cold), readahead off vs on.
cold = {}
for path in scan_paths:
    s, ra, _ = os.path.basename(path)[5:-5].split("_")
    cold.setdefault((int(s), int(ra)), []).append(json.load(open(path)))
report["cold_scan_readahead"] = readahead
report["cold_scan_runs"] = []
cold_median = {}
for key in sorted(cold):
    shards, ra = key
    reps = sorted(cold[key], key=lambda r: r["elapsed_sec"])
    med = reps[len(reps) // 2]
    cold_median[key] = med
    e = med["engine"]
    keys = med["config"]["keys"]
    report["cold_scan_runs"].append({
        "shards": shards,
        "readahead": ra,
        "elapsed_sec": round(med["elapsed_sec"], 4),
        "elapsed_sec_all_reps": [round(r["elapsed_sec"], 4) for r in reps],
        "rows_per_sec": round(keys / med["elapsed_sec"], 1) if med["elapsed_sec"] else None,
        "pool_misses": e.get("pool_misses", 0),
        "pool_read_waits": e.get("pool_read_waits", 0),
        "pool_prefetch_issued": e.get("pool_prefetch_issued", 0),
        "pool_prefetch_coalesced": e.get("pool_prefetch_coalesced", 0),
        "pool_prefetch_wasted": e.get("pool_prefetch_wasted", 0),
        "data_reads": e.get("data_reads", 0),
    })
cold_speed = {}
for (shards, ra), med in cold_median.items():
    if ra == 0:
        continue
    base = cold_median.get((shards, 0))
    if base and med["elapsed_sec"] > 0:
        cold_speed[f"shards_{shards}"] = round(
            base["elapsed_sec"] / med["elapsed_sec"], 3)
report["speedup_cold_scan_readahead_vs_none"] = cold_speed

json.dump(report, open(out, "w"), indent=2)
open(out, "a").write("\n")

print(f"\n{'shards':>6} {'pool':>14} {'read%':>6} {'txn/s':>9} {'p99 ms':>8} {'hit':>7}")
for r in report["runs"]:
    print(f"{r['shards']:>6} {r['pool_config'][:14]:>14} {r['read_frac']:>6} "
          f"{r['txn_per_sec']:>9.0f} {r['latency_p99_ms']:>8.2f} {r['pool_hit_ratio']:>7.3f}")
for frac, by_shard in sorted(speedups.items()):
    print(f"{frac}: striped over single-mutex: " +
          ", ".join(f"{k}={v:.2f}x" for k, v in sorted(by_shard.items())))
print(f"\n{'shards':>6} {'readahead':>10} {'scan s':>8} {'rows/s':>9} {'prefetch':>9} {'coalesced':>10}")
for r in report["cold_scan_runs"]:
    print(f"{r['shards']:>6} {r['readahead']:>10} {r['elapsed_sec']:>8.3f} "
          f"{r['rows_per_sec'] or 0:>9.0f} {r['pool_prefetch_issued']:>9} {r['pool_prefetch_coalesced']:>10}")
for k, v in sorted(cold_speed.items()):
    print(f"cold scan readahead={readahead} over readahead=0: {k}={v:.2f}x")
print(f"wrote {out}")
EOF
fi
