#!/usr/bin/env bash
# bench.sh — reproducible shard-scaling benchmark for siasserver.
#
# For each shard count (default 1 2 4) this script starts a fresh
# file-backed siasserver, runs a warmup pass followed by a measured
# cmd/siasload run, repeats BENCH_REPS times, and keeps the median rep by
# throughput. The medians land in BENCH_shard.json at the repo root
# (ops/s, p50/p99 latency, WAL flushes per commit, WAL page writes), plus
# the 4-vs-1 speedup, so the perf trajectory of the sharded layout is a
# committed artifact rather than a one-off terminal reading.
#
# The workload is write-only with page-sized values and a group-commit
# linger on both server configurations, which makes the WAL journal chain
# the dominant cost: that is the regime the sharded layout targets (N
# independent WAL files flush concurrently, and checkpoint pauses stay
# local to one shard). Override via environment:
#
#   BENCH_REPS=3 BENCH_WORKERS=32 BENCH_TXNS=400 BENCH_VALUE=8000
#   BENCH_KEYS=4096 BENCH_SHARDS="1 2 4" BENCH_ADDR=127.0.0.1:4599
#   BENCH_LINGER=2ms
set -euo pipefail

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
ADDR="${BENCH_ADDR:-127.0.0.1:4599}"
PORT="${ADDR##*:}"
HOST="${ADDR%:*}"
REPS="${BENCH_REPS:-3}"
WORKERS="${BENCH_WORKERS:-32}"
TXNS="${BENCH_TXNS:-400}"
VALUE="${BENCH_VALUE:-8000}"
KEYS="${BENCH_KEYS:-4096}"
SHARDS="${BENCH_SHARDS:-1 2 4}"
LINGER="${BENCH_LINGER:-2ms}"

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"' EXIT

echo "building binaries..."
(cd "$ROOT" && go build -o "$WORK/siasserver" ./cmd/siasserver)
(cd "$ROOT" && go build -o "$WORK/siasload" ./cmd/siasload)

wait_port() {
    for _ in $(seq 1 100); do
        if (echo >"/dev/tcp/$HOST/$PORT") 2>/dev/null; then
            return 0
        fi
        sleep 0.1
    done
    echo "server did not come up on $ADDR" >&2
    return 1
}

run_one() { # shards rep -> writes $WORK/res_<shards>_<rep>.json
    local shards=$1 rep=$2
    local data="$WORK/data"
    rm -rf "$data"
    "$WORK/siasserver" -addr "$ADDR" -shards "$shards" -data "$data" \
        -pool 8192 -max-inflight 512 -data-pages 524288 -wal-pages 262144 \
        -gc-linger "$LINGER" >"$WORK/server_${shards}_${rep}.log" 2>&1 &
    local pid=$!
    wait_port
    # Warmup: preloads the keyspace and touches every code path once so
    # cold-file block allocation is off the measured run.
    "$WORK/siasload" -addr "$ADDR" -workers "$WORKERS" -txns 50 \
        -ops-per-txn 1 -read-frac 0 -keys "$KEYS" -value "$VALUE" >/dev/null
    "$WORK/siasload" -addr "$ADDR" -workers "$WORKERS" -txns "$TXNS" \
        -ops-per-txn 1 -read-frac 0 -keys "$KEYS" -value "$VALUE" \
        -json "$WORK/res_${shards}_${rep}.json" >/dev/null
    kill -TERM "$pid" 2>/dev/null || true
    wait "$pid" 2>/dev/null || true
}

for s in $SHARDS; do
    for rep in $(seq 1 "$REPS"); do
        echo "shards=$s rep=$rep/$REPS ..."
        run_one "$s" "$rep"
    done
done

python3 - "$WORK" "$ROOT/BENCH_shard.json" <<'EOF'
import glob, json, os, sys

work, out = sys.argv[1], sys.argv[2]
runs = {}
for path in glob.glob(os.path.join(work, "res_*_*.json")):
    shards = int(os.path.basename(path).split("_")[1])
    runs.setdefault(shards, []).append(json.load(open(path)))

report = {"benchmark": "shard-scaling write throughput", "runs": []}
median = {}
for shards in sorted(runs):
    reps = sorted(runs[shards], key=lambda r: r["txn_per_sec"])
    med = reps[len(reps) // 2]
    median[shards] = med
    e = med["engine"]
    report["runs"].append({
        "shards": shards,
        "reps": len(reps),
        "txn_per_sec": round(med["txn_per_sec"], 1),
        "txn_per_sec_all_reps": [round(r["txn_per_sec"], 1) for r in reps],
        "latency_p50_ms": med["latency"]["p50_ms"],
        "latency_p99_ms": med["latency"]["p99_ms"],
        "wal_flushes_per_commit": round(e["flushes_per_commit"], 4),
        "wal_page_writes": e["wal_page_writes"],
        "group_commit_saved_pct": round(e["group_commit_saved_pct"], 1),
        "config": med["config"],
    })
if 1 in median and 4 in median:
    report["speedup_4_vs_1"] = round(
        median[4]["txn_per_sec"] / median[1]["txn_per_sec"], 3)

json.dump(report, open(out, "w"), indent=2)
open(out, "a").write("\n")

print(f"\n{'shards':>6} {'txn/s':>9} {'p50 ms':>8} {'p99 ms':>8} {'fl/commit':>10}")
for r in report["runs"]:
    print(f"{r['shards']:>6} {r['txn_per_sec']:>9.0f} {r['latency_p50_ms']:>8.2f} "
          f"{r['latency_p99_ms']:>8.2f} {r['wal_flushes_per_commit']:>10.4f}")
if "speedup_4_vs_1" in report:
    print(f"\n4-shard speedup over 1 shard: {report['speedup_4_vs_1']:.2f}x")
print(f"wrote {out}")
EOF
