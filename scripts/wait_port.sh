#!/usr/bin/env bash
# wait_port.sh HOST PORT [TIMEOUT_SECONDS]
#
# Polls until a TCP connect to HOST:PORT succeeds (default timeout 10s).
# Exits 0 once the port accepts, 1 on timeout. Shared by the CI jobs that
# start siasserver in the background so the readiness loop lives in one
# place instead of being copy-pasted per job.
set -u
host=${1:?usage: wait_port.sh HOST PORT [TIMEOUT_SECONDS]}
port=${2:?usage: wait_port.sh HOST PORT [TIMEOUT_SECONDS]}
timeout=${3:-10}

deadline=$(($(date +%s) + timeout))
while ! (echo > "/dev/tcp/$host/$port") 2>/dev/null; do
  if [ "$(date +%s)" -ge "$deadline" ]; then
    echo "wait_port: $host:$port not reachable after ${timeout}s" >&2
    exit 1
  fi
  sleep 0.1
done
