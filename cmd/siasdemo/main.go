// Command siasdemo is the "SIAS-V in Action" walkthrough: it narrates the
// paper's Figures 1 and 2 on a live engine — version chains growing
// backwards, implicit invalidation, VIDmap entrypoint swings, tombstone
// deletes, index behaviour under key and non-key updates, and the write
// pattern difference against the SI baseline.
package main

import (
	"errors"
	"fmt"
	"os"

	"sias"
)

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "siasdemo: %v\n", err)
		os.Exit(1)
	}
}

func main() {
	fmt.Println("=== SIAS in action ===")
	fmt.Println()
	fmt.Println("Figure 1: three transactions update data item X in serial order.")
	fmt.Println("Under SIAS each update APPENDS a new version carrying a back")
	fmt.Println("pointer; nothing is ever modified in place.")
	fmt.Println()

	db, err := sias.Open(sias.Options{Engine: sias.EngineSIAS, Storage: sias.StorageSSD, Trace: true})
	must(err)
	items, err := db.CreateTable("items", sias.NewSchema(
		sias.Column{Name: "id", Type: sias.TypeInt64},
		sias.Column{Name: "price", Type: sias.TypeFloat64},
	), "id")
	must(err)

	// T1 creates X0.
	t1 := db.Begin()
	must(items.Insert(t1, sias.Row{int64(9), 1.00}))
	must(db.Commit(t1))
	fmt.Printf("T1 (txid %d) inserted X0: VID assigned, *ptr = nil\n", t1.ID)

	// An old reader that will later demonstrate chain traversal.
	oldReader := db.Begin()

	// T2 and T3 update X.
	for i, price := range []float64{2.00, 3.00} {
		tx := db.Begin()
		must(items.Update(tx, 9, func(r sias.Row) (sias.Row, error) {
			r[1] = price
			return r, nil
		}))
		must(db.Commit(tx))
		fmt.Printf("T%d (txid %d) appended X%d with *ptr -> X%d; X%d is implicitly invalidated\n",
			i+2, tx.ID, i+1, i, i)
	}

	rel := items.Internal().SIAS()
	st := rel.Stats()
	fmt.Printf("\nVIDmap entrypoint now points at the newest version; chain stats: %d appends, 0 in-place writes\n", st.Appends)

	// The old reader still sees the original price by walking the chain.
	row, err := items.Get(oldReader, 9)
	must(err)
	fmt.Printf("old transaction (snapshot before the updates) reads price %.2f — reached by walking the chain\n", row[1])
	must(db.Commit(oldReader))

	fresh := db.Begin()
	row, err = items.Get(fresh, 9)
	must(err)
	fmt.Printf("fresh transaction reads price %.2f from the entrypoint, no chain hops needed\n", row[1])
	must(db.Commit(fresh))

	st = rel.Stats()
	fmt.Printf("chain walks so far: %d, predecessor hops: %d\n\n", st.ChainWalks, st.ChainHops)

	// First-updater-wins.
	fmt.Println("First-updater-wins: two concurrent transactions update X.")
	a := db.Begin()
	b := db.Begin()
	must(items.Update(a, 9, func(r sias.Row) (sias.Row, error) { r[1] = 10.0; return r, nil }))
	must(db.Commit(a))
	err = items.Update(b, 9, func(r sias.Row) (sias.Row, error) { r[1] = 20.0; return r, nil })
	if errors.Is(err, sias.ErrSerialization) {
		fmt.Println("second updater correctly rejected with a serialization failure")
	} else {
		fmt.Printf("unexpected: %v\n", err)
	}
	must(db.Abort(b))

	// Tombstone delete.
	fmt.Println("\nDelete appends a tombstone version; older snapshots still see the item.")
	before := db.Begin()
	del := db.Begin()
	must(items.Delete(del, 9))
	must(db.Commit(del))
	if _, err := items.Get(before, 9); err == nil {
		fmt.Println("transaction older than the delete still reads the last committed state")
	}
	must(db.Commit(before))
	after := db.Begin()
	if _, err := items.Get(after, 9); errors.Is(err, sias.ErrNotFound) {
		fmt.Println("transactions after the delete no longer see it")
	}
	must(db.Commit(after))

	// Figure 2: index behaviour.
	fmt.Println("\nFigure 2: the B+ tree stores <key, VID> records.")
	prods, err := db.CreateTable("products", sias.NewSchema(
		sias.Column{Name: "sku", Type: sias.TypeInt64},
		sias.Column{Name: "price", Type: sias.TypeFloat64},
	), "sku")
	must(err)
	tx := db.Begin()
	must(prods.Insert(tx, sias.Row{int64(100), 5.0}))
	must(db.Commit(tx))
	idxBefore := prods.Internal().SIAS().Stats().IndexInserts

	tx = db.Begin()
	must(prods.Update(tx, 100, func(r sias.Row) (sias.Row, error) { r[1] = 6.0; return r, nil }))
	must(db.Commit(tx))
	idxAfterNonKey := prods.Internal().SIAS().Stats().IndexInserts
	fmt.Printf("non-key update: index inserts %d -> %d (unchanged — only the VIDmap moved)\n", idxBefore, idxAfterNonKey)

	tx = db.Begin()
	must(prods.Update(tx, 100, func(r sias.Row) (sias.Row, error) { r[0] = int64(101); return r, nil }))
	must(db.Commit(tx))
	idxAfterKey := prods.Internal().SIAS().Stats().IndexInserts
	fmt.Printf("key update 100 -> 101: index inserts %d -> %d (one new <key,VID> entry; the old one keeps old versions reachable)\n", idxAfterNonKey, idxAfterKey)

	tx = db.Begin()
	if row, err := prods.Get(tx, 101); err == nil {
		fmt.Printf("lookup by new key 101 finds the entrypoint: price %.2f\n", row[1])
	}
	must(db.Commit(tx))

	// Write pattern.
	must(db.Checkpoint())
	sum := db.Trace().Summarize()
	fmt.Printf("\nDevice trace of this whole demo: %d reads, %d writes — every write an append.\n", sum.Reads, sum.Writes)
	fmt.Printf("virtual time consumed: %s\n", db.Elapsed())
}
