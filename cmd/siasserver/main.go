// Command siasserver serves a SIAS deployment over TCP with the
// internal/wire protocol: per-connection sessions, request pipelining,
// group commit, bounded-admission overload handling and graceful drain on
// SIGTERM/SIGINT.
//
// Usage:
//
//	siasserver [-addr :4544] [-shards N] [-engine sias|si] [-policy t2|t1]
//	           [-pool FRAMES] [-pool-partitions P] [-readahead ROWS]
//	           [-prefetch-depth N] [-max-inflight N]
//	           [-drain SECONDS] [-data DIR] [-follow ADDR] [-announce ADDR]
//	           [-metrics-addr :9544] [-slow-op-ms MS] [-slow-op-ring N]
//	           [-trace-sample F] [-asof-retention N]
//
// With -metrics-addr, a side HTTP listener serves /metrics (Prometheus text
// exposition of every layer: per-op latency histograms, WAL append/fsync
// timings, buffer pool hit ratios, device write amplification, replication
// lag), /healthz (readiness: 200 while serving and not draining), /debug/pprof
// (CPU/heap/goroutine profiles), /debug/slowops and /debug/traces. -slow-op-ms
// additionally logs every request slower than MS milliseconds with its op,
// shard, transaction handle and trace id, keeping the most recent -slow-op-ring
// records at /debug/slowops. Whenever observability is on, a distributed
// tracer records spans for client requests carrying TRACE envelopes, for
// over-threshold slow ops (always force-kept), and — with -trace-sample F —
// for a head-sampled fraction F of bare data ops; /debug/traces serves the
// recent traces grouped and filterable by trace id, op and duration.
//
// With -follow, the server runs as a replication follower: it subscribes to
// the primary at ADDR (which must run the same shard count), mirrors its
// per-shard WALs byte for byte, serves read-only snapshot reads at the
// applied horizon, and rejects writes with READ_ONLY until promotion — by an
// operator PROMOTE frame or automatically when the primary drains and ends
// the stream. -announce is the follower address the primary hands to
// clients during a drain so they fail over (defaults to a loopback form of
// -addr).
//
// With -shards N > 1 the primary-key space is hash-partitioned across N
// independent engine instances, each with its own WAL writer, group-commit
// batcher, VIDmap, buffer pool and devices; -pool, -data-pages and
// -wal-pages are totals divided evenly across the shards so resource use
// stays constant as the shard count varies. With -data, each shard's heap
// and WAL live in files under DIR/shard-<i> and a restart recovers the
// committed state through per-shard WAL replay, run in parallel; without
// it the store is in-memory and vanishes with the process. The server
// bootstraps with one key/value table ("kv": int64 key, bytes value);
// clients create further tables and secondary indexes over the wire, and
// that DDL is WAL-logged so it recovers and replicates like row data.
// -asof-retention bounds time travel: AS OF snapshot tokens stay fully
// resolvable until the transaction horizon passes them by N ids.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"sync"
	"syscall"
	"time"

	"sias/internal/device"
	"sias/internal/engine"
	"sias/internal/obs"
	"sias/internal/page"
	"sias/internal/repl"
	"sias/internal/server"
	"sias/internal/shard"
	"sias/internal/tuple"
)

func main() {
	addr := flag.String("addr", ":4544", "TCP listen address")
	shards := flag.Int("shards", 1, "hash-partitioned engine shards")
	kind := flag.String("engine", "sias", "storage engine: sias or si")
	policy := flag.String("policy", "t2", "append flush policy: t2 (checkpoint) or t1 (bgwriter)")
	pool := flag.Int("pool", 4096, "buffer pool frames (total across shards)")
	poolParts := flag.Int("pool-partitions", 0, "buffer pool lock stripes per shard (0 = auto, 1 = classic single mutex)")
	readahead := flag.Int("readahead", 32, "scan readahead window in rows: entrypoint pages of that many upcoming VIDs are prefetched ahead of scan cursors (0 = off)")
	prefetchDepth := flag.Int("prefetch-depth", 0, "max prefetch device reads in flight per shard (0 = pool default)")
	maxInflight := flag.Int("max-inflight", 64, "admission control: max concurrently executing requests")
	drainSec := flag.Float64("drain", 5, "graceful drain timeout in seconds")
	dataDir := flag.String("data", "", "data directory for file-backed devices (empty = in-memory)")
	dataPages := flag.Int64("data-pages", 1<<16, "data device size in pages (total across shards)")
	walPages := flag.Int64("wal-pages", 1<<15, "WAL device size in pages (total across shards)")
	walSync := flag.Bool("wal-sync", true, "fsync the WAL device on every page write (file-backed only)")
	gcLinger := flag.Duration("gc-linger", 0, "max extra wait for a group-commit batch to grow (0 = flush immediately)")
	gcBatch := flag.Int("gc-batch", 16, "group-commit batch size target while lingering")
	asofRetention := flag.Uint64("asof-retention", 1<<16, "retain superseded versions written by the most recent N transactions so AS OF snapshot tokens inside the window stay resolvable (0 = keep only what live snapshots need)")
	follow := flag.String("follow", "", "run as a replication follower of the primary at this address")
	announce := flag.String("announce", "", "follower address announced to the primary for client failover (default: loopback form of -addr)")
	metricsAddr := flag.String("metrics-addr", "", "HTTP listen address for /metrics, /healthz and /debug/pprof (empty = disabled)")
	slowOpMs := flag.Int("slow-op-ms", 0, "log requests slower than this many milliseconds (0 = disabled)")
	slowOpRing := flag.Int("slow-op-ring", 0, "slow-op records kept for /debug/slowops (0 = default 128)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of bare data ops traced server-side; traced client requests (TRACE envelopes) are always recorded. Needs -metrics-addr or -slow-op-ms")
	flag.Parse()

	log.SetFlags(log.Ltime | log.Lmicroseconds)
	cfg := serverConfig{
		addr: *addr, shards: *shards, kind: *kind, policy: *policy,
		pool: *pool, poolParts: *poolParts, readahead: *readahead, prefetchDepth: *prefetchDepth,
		maxInflight: *maxInflight, drainSec: *drainSec,
		dataDir: *dataDir, dataPages: *dataPages, walPages: *walPages, walSync: *walSync,
		gcLinger: *gcLinger, gcBatch: *gcBatch, asofRetention: *asofRetention,
		follow: *follow, announce: *announce,
		metricsAddr: *metricsAddr, slowOpMs: *slowOpMs,
		slowOpRing: *slowOpRing, traceSample: *traceSample,
	}
	if cfg.follow != "" && cfg.announce == "" {
		cfg.announce = cfg.addr
		if len(cfg.announce) > 0 && cfg.announce[0] == ':' {
			cfg.announce = "127.0.0.1" + cfg.announce
		}
	}
	if err := run(cfg); err != nil {
		log.Fatal(err)
	}
}

type serverConfig struct {
	addr          string
	shards        int
	kind, policy  string
	pool          int
	poolParts     int
	readahead     int // scan readahead window in rows; 0 = off
	prefetchDepth int // bounded in-flight prefetch reads per shard
	maxInflight   int
	drainSec      float64
	dataDir       string
	dataPages     int64
	walPages      int64
	walSync       bool
	gcLinger      time.Duration
	gcBatch       int
	asofRetention uint64  // engine.Options.GCRetention for every shard
	follow        string  // primary address; non-empty = follower mode
	announce      string  // follower address handed to clients on drain
	metricsAddr   string  // HTTP side listener; empty = observability off
	slowOpMs      int     // slow-op log threshold; 0 = disabled
	slowOpRing    int     // /debug/slowops ring size; 0 = obs default
	traceSample   float64 // server-side head-sampling rate for bare data ops
}

// version is stamped by the build via -ldflags "-X main.version=...".
var version = "dev"

// openedShard is one shard after openShard: engine open and the kv table
// bootstrapped, but not yet recovered. Recovery runs from run() once every
// shard is open, so in-doubt cross-shard (2PC) transactions can be resolved
// against the sibling shards' decision logs.
type openedShard struct {
	db      *engine.DB
	tab     *engine.Table
	recover bool
	closers []func() error
}

// openShard assembles one engine shard up to (not including) WAL replay.
// Device sizes and pool frames are per-shard shares of the configured
// totals, so varying -shards compares layouts at constant resource budgets.
func openShard(cfg serverConfig, i int) (openedShard, error) {
	opts := engine.Options{
		PoolFrames:      max(cfg.pool/cfg.shards, 64),
		PoolPartitions:  cfg.poolParts,
		ScanReadahead:   cfg.readahead,
		PrefetchWorkers: cfg.prefetchDepth,
		GCRetention:     cfg.asofRetention,
	}
	switch cfg.kind {
	case "sias":
		opts.Kind = engine.KindSIAS
	case "si":
		opts.Kind = engine.KindSI
	default:
		return openedShard{}, fmt.Errorf("unknown -engine %q (want sias or si)", cfg.kind)
	}
	switch cfg.policy {
	case "t2":
		opts.Policy = engine.PolicyT2
	case "t1":
		opts.Policy = engine.PolicyT1
	default:
		return openedShard{}, fmt.Errorf("unknown -policy %q (want t2 or t1)", cfg.policy)
	}
	dataPages := max(cfg.dataPages/int64(cfg.shards), 1<<10)
	walPages := max(cfg.walPages/int64(cfg.shards), 1<<9)

	var closers []func() error
	if cfg.dataDir != "" {
		dir := filepath.Join(cfg.dataDir, fmt.Sprintf("shard-%d", i))
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return openedShard{}, err
		}
		walPath := filepath.Join(dir, "wal.img")
		// A pre-existing WAL means a previous generation to replay. A
		// follower resumes its mirrored log at the exact byte position so it
		// stays identical to the primary's.
		if _, err := os.Stat(walPath); err == nil {
			opts.Recover = true
			opts.ResumeWAL = cfg.follow != ""
		}
		data, err := device.OpenFile(filepath.Join(dir, "data.img"), page.Size, dataPages)
		if err != nil {
			return openedShard{}, err
		}
		walDev, err := device.OpenFile(walPath, page.Size, walPages)
		if err != nil {
			data.Close()
			return openedShard{}, err
		}
		// Commit acknowledgements must mean durable; group commit keeps
		// the per-transaction cost of this down to a share of one fsync.
		walDev.SetSyncOnWrite(cfg.walSync)
		closers = append(closers, walDev.Close, data.Close)
		opts.DataDevice, opts.WALDevice = data, walDev
	} else {
		opts.DataDevice = device.NewMem(page.Size, dataPages)
		opts.WALDevice = device.NewMem(page.Size, walPages)
	}

	db, err := engine.Open(opts)
	if err != nil {
		return openedShard{closers: closers}, err
	}
	if cfg.follow != "" {
		// Replica mode must be on before the table exists: its extents come
		// from the unlogged scratch region, keeping the mirrored log clean.
		db.SetReplica(true)
	}
	tab, _, err := db.CreateTable(0, "kv", tuple.NewSchema(
		tuple.Column{Name: "k", Type: tuple.TypeInt64},
		tuple.Column{Name: "v", Type: tuple.TypeBytes},
	), "k")
	if err != nil {
		return openedShard{closers: closers}, err
	}
	return openedShard{db: db, tab: tab, recover: opts.Recover, closers: closers}, nil
}

// recoverShards replays every pre-existing WAL in parallel. Before replay
// it collects each shard's pre-scanned coordinator decisions and installs a
// cross-shard resolver on every primary shard, so prepared-but-undecided
// 2PC participants are resolved from the coordinator shard's decision log
// (presumed abort when no decision exists anywhere). Followers skip the
// resolver: their mirrored logs must stay byte-identical to the primary's,
// and the replication stream carries the outcomes.
func recoverShards(cfg serverConfig, opened []openedShard) error {
	any := false
	for _, o := range opened {
		any = any || o.recover
	}
	if !any {
		return nil
	}
	if cfg.follow == "" {
		decs := make([]map[uint64]bool, len(opened))
		for i, o := range opened {
			decs[i] = o.db.Decisions()
		}
		for _, o := range opened {
			o.db.SetInDoubtResolver(func(gid uint64, coord uint32) (bool, bool) {
				if int(coord) >= len(decs) {
					return false, false
				}
				commit, known := decs[coord][gid]
				return commit, known
			})
		}
	}
	errs := make([]error, len(opened))
	var wg sync.WaitGroup
	for i, o := range opened {
		if !o.recover {
			continue
		}
		wg.Add(1)
		go func(i int, o openedShard) {
			defer wg.Done()
			start := time.Now()
			if _, err := o.db.Recover(0); err != nil {
				errs[i] = fmt.Errorf("shard %d recover: %w", i, err)
				return
			}
			log.Printf("siasserver: shard %d recovered in %.3fs", i, time.Since(start).Seconds())
			if cfg.follow != "" {
				// Recovery fast-forwarded the id allocator; re-seed the
				// replica read horizon to cover the replayed history.
				o.db.SetReplica(true)
			}
		}(i, o)
	}
	wg.Wait()
	return errors.Join(errs...)
}

func run(cfg serverConfig) error {
	if cfg.shards < 1 {
		return fmt.Errorf("-shards must be >= 1, got %d", cfg.shards)
	}

	// Open all shards in parallel, then replay pre-existing WALs in a second
	// parallel phase: recovery needs every shard open first so in-doubt 2PC
	// participants can consult the coordinator shard's decision log.
	opened := make([]openedShard, cfg.shards)
	errs := make([]error, cfg.shards)
	var wg sync.WaitGroup
	start := time.Now()
	for i := 0; i < cfg.shards; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			opened[i], errs[i] = openShard(cfg, i)
		}(i)
	}
	wg.Wait()
	var closers []func() error
	for _, o := range opened {
		closers = append(closers, o.closers...)
	}
	for _, err := range errs {
		if err != nil {
			closeAll(closers)
			return err
		}
	}
	if err := recoverShards(cfg, opened); err != nil {
		closeAll(closers)
		return err
	}
	shards := make([]shard.Shard, cfg.shards)
	for i, o := range opened {
		fac := engine.NewFacade(o.db)
		if cfg.gcLinger > 0 {
			fac.SetGroupCommitLinger(cfg.gcLinger, cfg.gcBatch)
		}
		shards[i] = shard.Shard{Facade: fac, Table: o.tab}
	}
	if cfg.dataDir != "" {
		log.Printf("siasserver: %d shard(s) opened in %.3fs under %s", cfg.shards, time.Since(start).Seconds(), cfg.dataDir)
	}

	router, err := shard.NewRouter(shards)
	if err != nil {
		closeAll(closers)
		return err
	}
	// Observability: one registry wires every layer (server, engine, WAL,
	// pool, devices, replication); a side HTTP listener exposes it so the
	// wire port stays pure protocol. The slow-op log works even without the
	// listener — it logs through the standard logger either way.
	var reg *obs.Registry
	var slow *obs.SlowOpLog
	var tracer *obs.Tracer
	if cfg.metricsAddr != "" || cfg.slowOpMs > 0 {
		reg = obs.NewRegistry()
		slow = obs.NewSlowOpLog(time.Duration(cfg.slowOpMs)*time.Millisecond, log.Printf,
			obs.WithRingSize(cfg.slowOpRing))
		// The tracer exists whenever observability does: client-carried TRACE
		// envelopes and slow-op force-keeps record even with -trace-sample 0.
		tracer = obs.NewTracer(cfg.traceSample, 0)
		defer tracer.Close()
		serveStart := time.Now()
		reg.CollectGauge("sias_build_info",
			"Build metadata; value is always 1.", func(emit func(obs.Labels, float64)) {
				emit(obs.Labels{"version": version, "goversion": runtime.Version()}, 1)
			})
		reg.CollectGauge("sias_server_uptime_seconds",
			"Seconds since this process started serving.", func(emit func(obs.Labels, float64)) {
				emit(nil, time.Since(serveStart).Seconds())
			})
	}
	var follower *repl.Follower
	if cfg.follow != "" {
		facades := make([]*engine.Facade, len(shards))
		for i := range shards {
			facades[i] = shards[i].Facade
		}
		follower, err = repl.NewFollower(repl.Config{
			PrimaryAddr: cfg.follow,
			Announce:    cfg.announce,
			Shards:      facades,
			Tracer:      tracer,
		})
		if err != nil {
			closeAll(closers)
			return err
		}
	}
	srv, err := server.New(server.Config{
		Router:       router,
		MaxInFlight:  cfg.maxInflight,
		DrainTimeout: time.Duration(cfg.drainSec * float64(time.Second)),
		Replica:      follower,
		Obs:          reg,
		SlowOps:      slow,
		Tracer:       tracer,
	})
	if err != nil {
		closeAll(closers)
		return err
	}
	if cfg.metricsAddr != "" {
		mln, err := net.Listen("tcp", cfg.metricsAddr)
		if err != nil {
			closeAll(closers)
			return fmt.Errorf("metrics listener: %w", err)
		}
		defer mln.Close()
		go func() {
			log.Printf("siasserver: metrics on http://%s/metrics (healthz, debug/pprof, debug/slowops, debug/traces)", mln.Addr())
			msrv := &http.Server{Handler: obs.Handler(reg, slow, tracer, srv.Ready)}
			if err := msrv.Serve(mln); err != nil && err != http.ErrServerClosed && !errors.Is(err, net.ErrClosed) {
				log.Printf("siasserver: metrics listener: %v", err)
			}
		}()
	}
	if follower != nil {
		log.Printf("siasserver: follower of %s (announce %s); read-only until promotion", cfg.follow, cfg.announce)
		follower.Run()
	}

	db := shards[0].Facade.DB()
	serveErr := make(chan error, 1)
	go func() {
		log.Printf("siasserver: shards=%d engine=%s policy=%s pool=%d max-inflight=%d data=%s listening on %s",
			cfg.shards, db.Kind(), db.Policy(), cfg.pool, cfg.maxInflight, orMem(cfg.dataDir), cfg.addr)
		serveErr <- srv.ListenAndServe(cfg.addr)
	}()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		log.Printf("siasserver: %s received, draining (timeout %.1fs)...", sig, cfg.drainSec)
		if follower != nil {
			follower.Stop()
		}
		drainStart := time.Now()
		if err := srv.Shutdown(context.Background()); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-serveErr; err != nil {
			return err
		}
		st := srv.Stats()
		est := shard.Aggregate(router.Stats())
		rst := router.RouterStats()
		log.Printf("siasserver: drained in %.3fs (conns=%d requests=%d overloaded=%d drain-rejected=%d commits=%d flushes=%d batches=%d cross-shard=%d)",
			time.Since(drainStart).Seconds(), st.Connections, st.Requests, st.Overloaded, st.DrainRejected,
			est.Commits, est.CommitFlushes, est.CommitBatches, rst.CrossCommits)
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}

	return closeAll(closers)
}

func closeAll(closers []func() error) error {
	var first error
	for _, c := range closers {
		if err := c(); err != nil && first == nil {
			first = err
		}
	}
	return first
}

func orMem(dir string) string {
	if dir == "" {
		return "(memory)"
	}
	return dir
}
