// Command siasserver serves a SIAS engine over TCP with the internal/wire
// protocol: per-connection sessions, request pipelining, group commit,
// bounded-admission overload handling and graceful drain on SIGTERM/SIGINT.
//
// Usage:
//
//	siasserver [-addr :4544] [-engine sias|si] [-policy t2|t1]
//	           [-pool FRAMES] [-max-inflight N] [-drain SECONDS]
//	           [-data DIR]
//
// With -data, heap and WAL live in files under DIR and a restart recovers
// the committed state through WAL replay; without it the store is
// in-memory and vanishes with the process. The served relation is a single
// key/value table ("kv": int64 key, bytes value).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"sias/internal/device"
	"sias/internal/engine"
	"sias/internal/page"
	"sias/internal/server"
	"sias/internal/tuple"
)

func main() {
	addr := flag.String("addr", ":4544", "TCP listen address")
	kind := flag.String("engine", "sias", "storage engine: sias or si")
	policy := flag.String("policy", "t2", "append flush policy: t2 (checkpoint) or t1 (bgwriter)")
	pool := flag.Int("pool", 4096, "buffer pool frames")
	maxInflight := flag.Int("max-inflight", 64, "admission control: max concurrently executing requests")
	drainSec := flag.Float64("drain", 5, "graceful drain timeout in seconds")
	dataDir := flag.String("data", "", "data directory for file-backed devices (empty = in-memory)")
	dataPages := flag.Int64("data-pages", 1<<16, "data device size in pages")
	walPages := flag.Int64("wal-pages", 1<<15, "WAL device size in pages")
	walSync := flag.Bool("wal-sync", true, "fsync the WAL device on every page write (file-backed only)")
	flag.Parse()

	log.SetFlags(log.Ltime | log.Lmicroseconds)
	if err := run(*addr, *kind, *policy, *pool, *maxInflight, *drainSec, *dataDir, *dataPages, *walPages, *walSync); err != nil {
		log.Fatal(err)
	}
}

func run(addr, kind, policy string, pool, maxInflight int, drainSec float64, dataDir string, dataPages, walPages int64, walSync bool) error {
	opts := engine.Options{
		PoolFrames: pool,
	}
	switch kind {
	case "sias":
		opts.Kind = engine.KindSIAS
	case "si":
		opts.Kind = engine.KindSI
	default:
		return fmt.Errorf("unknown -engine %q (want sias or si)", kind)
	}
	switch policy {
	case "t2":
		opts.Policy = engine.PolicyT2
	case "t1":
		opts.Policy = engine.PolicyT1
	default:
		return fmt.Errorf("unknown -policy %q (want t2 or t1)", policy)
	}

	var closers []func() error
	if dataDir != "" {
		if err := os.MkdirAll(dataDir, 0o755); err != nil {
			return err
		}
		walPath := filepath.Join(dataDir, "wal.img")
		// A pre-existing WAL means a previous generation to replay.
		if _, err := os.Stat(walPath); err == nil {
			opts.Recover = true
		}
		data, err := device.OpenFile(filepath.Join(dataDir, "data.img"), page.Size, dataPages)
		if err != nil {
			return err
		}
		walDev, err := device.OpenFile(walPath, page.Size, walPages)
		if err != nil {
			data.Close()
			return err
		}
		// Commit acknowledgements must mean durable; group commit keeps
		// the per-transaction cost of this down to a share of one fsync.
		walDev.SetSyncOnWrite(walSync)
		closers = append(closers, walDev.Close, data.Close)
		opts.DataDevice, opts.WALDevice = data, walDev
	} else {
		opts.DataDevice = device.NewMem(page.Size, dataPages)
		opts.WALDevice = device.NewMem(page.Size, walPages)
	}

	db, err := engine.Open(opts)
	if err != nil {
		return err
	}
	tab, _, err := db.CreateTable(0, "kv", tuple.NewSchema(
		tuple.Column{Name: "k", Type: tuple.TypeInt64},
		tuple.Column{Name: "v", Type: tuple.TypeBytes},
	), "k")
	if err != nil {
		return err
	}
	if opts.Recover {
		start := time.Now()
		if _, err := db.Recover(0); err != nil {
			return fmt.Errorf("recover: %w", err)
		}
		st := db.Stats()
		log.Printf("recovered data dir %s in %.3fs (wal pages read, pool %+d pages)", dataDir, time.Since(start).Seconds(), st.Pool.Misses)
	}

	facade := engine.NewFacade(db)
	srv, err := server.New(server.Config{
		Facade:       facade,
		Table:        tab,
		MaxInFlight:  maxInflight,
		DrainTimeout: time.Duration(drainSec * float64(time.Second)),
	})
	if err != nil {
		return err
	}

	serveErr := make(chan error, 1)
	go func() {
		log.Printf("siasserver: engine=%s policy=%s pool=%d max-inflight=%d data=%s listening on %s",
			db.Kind(), db.Policy(), pool, maxInflight, orMem(dataDir), addr)
		serveErr <- srv.ListenAndServe(addr)
	}()

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, syscall.SIGTERM, syscall.SIGINT)
	select {
	case sig := <-sigs:
		log.Printf("siasserver: %s received, draining (timeout %.1fs)...", sig, drainSec)
		start := time.Now()
		if err := srv.Shutdown(context.Background()); err != nil {
			return fmt.Errorf("drain: %w", err)
		}
		if err := <-serveErr; err != nil {
			return err
		}
		st := srv.Stats()
		est := facade.Stats()
		log.Printf("siasserver: drained in %.3fs (conns=%d requests=%d overloaded=%d drain-rejected=%d commits=%d flushes=%d batches=%d)",
			time.Since(start).Seconds(), st.Connections, st.Requests, st.Overloaded, st.DrainRejected,
			est.Commits, est.CommitFlushes, est.CommitBatches)
	case err := <-serveErr:
		if err != nil {
			return err
		}
	}

	for _, c := range closers {
		if err := c(); err != nil {
			return err
		}
	}
	return nil
}

func orMem(dir string) string {
	if dir == "" {
		return "(memory)"
	}
	return dir
}
