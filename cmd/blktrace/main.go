// Command blktrace records and renders a block trace of a TPC-C run on a
// simulated SSD RAID, in the spirit of blktrace/blkparse as used for the
// paper's Figures 3 and 4.
//
// Usage:
//
//	blktrace -engine sias|si [-wh N] [-dur SECONDS] [-width N] [-height N]
package main

import (
	"flag"
	"fmt"
	"os"

	"sias/internal/engine"
	"sias/internal/exp"
	"sias/internal/simclock"
)

func main() {
	eng := flag.String("engine", "sias", "storage engine: sias or si")
	wh := flag.Int("wh", 20, "warehouses (scaled population)")
	dur := flag.Int("dur", 300, "run duration in virtual seconds")
	width := flag.Int("width", 100, "plot width in characters")
	height := flag.Int("height", 24, "plot height in lines")
	flag.Parse()

	kind := engine.KindSIAS
	if *eng == "si" {
		kind = engine.KindSI
	} else if *eng != "sias" {
		fmt.Fprintf(os.Stderr, "blktrace: unknown engine %q\n", *eng)
		os.Exit(2)
	}
	cfg := exp.BlocktraceConfig{
		Warehouses: *wh,
		Duration:   simclock.Duration(*dur) * simclock.Second,
		Width:      *width,
		Height:     *height,
	}
	res, rendered, err := exp.RunBlocktrace(kind, cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "blktrace: %v\n", err)
		os.Exit(1)
	}
	fmt.Print(rendered)
	fmt.Printf("throughput: %.0f NOTPM, avg response %s\n", res.Metrics.NOTPM, res.Metrics.AvgResponse)
	for i, w := range res.Wear {
		fmt.Printf("ssd%d wear: %d erases (max/block %d), %d pages relocated by device GC\n",
			i, w.TotalErases, w.MaxErases, w.Relocated)
	}
}
