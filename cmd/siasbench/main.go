// Command siasbench regenerates the paper's evaluation artifacts (Tables 1
// and 2, Figures 3-6) on the simulated storage stack.
//
// Usage:
//
//	siasbench -exp table1|table2|fig3|fig4|fig5|fig6|all [-wh N] [-dur SECONDS]
//
// Each experiment prints rows/series in the layout of the corresponding
// table or figure of "SIAS-Chains: Snapshot Isolation Append Storage Chains"
// (the full paper behind the EDBT 2014 demo "SIAS-V in Action").
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"sias/internal/engine"
	"sias/internal/exp"
	"sias/internal/simclock"
)

func main() {
	expID := flag.String("exp", "all", "experiment: table1, table2, fig3, fig4, fig5, fig6, all")
	wh := flag.Int("wh", 0, "override warehouse count (single-run experiments)")
	dur := flag.Int("dur", 0, "override run duration in virtual seconds")
	flag.Parse()

	run := func(id string) error {
		start := time.Now()
		defer func() {
			fmt.Fprintf(os.Stderr, "[%s took %.1fs real]\n", id, time.Since(start).Seconds())
		}()
		switch id {
		case "table1":
			cfg := exp.DefaultTable1Config()
			if *wh > 0 {
				cfg.Warehouses = *wh
			}
			if *dur > 0 {
				cfg.Durations = []simclock.Duration{simclock.Duration(*dur) * simclock.Second}
			}
			rows, err := exp.RunTable1(cfg)
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatTable1(rows))
		case "table2":
			cfg := exp.DefaultTable2Config()
			if *dur > 0 {
				cfg.Duration = simclock.Duration(*dur) * simclock.Second
			}
			pts, err := exp.RunSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatSweep("Table 2: TPC-C on HDD — Throughput (NOTPM) and Response Time (sec.)", pts))
		case "fig3", "fig4":
			cfg := exp.DefaultBlocktraceConfig()
			if *wh > 0 {
				cfg.Warehouses = *wh
			}
			if *dur > 0 {
				cfg.Duration = simclock.Duration(*dur) * simclock.Second
			}
			kind := engine.KindSIAS
			if id == "fig4" {
				kind = engine.KindSI
			}
			_, rendered, err := exp.RunBlocktrace(kind, cfg)
			if err != nil {
				return err
			}
			fmt.Print(rendered)
		case "fig5":
			cfg := exp.DefaultFigure5Config()
			if *dur > 0 {
				cfg.Duration = simclock.Duration(*dur) * simclock.Second
			}
			pts, err := exp.RunSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatSweep("Figure 5: TPC-C on two-SSD RAID-0 — NOTPM and response time vs warehouses", pts))
		case "fig6":
			cfg := exp.DefaultFigure6Config()
			if *dur > 0 {
				cfg.Duration = simclock.Duration(*dur) * simclock.Second
			}
			pts, err := exp.RunSweep(cfg)
			if err != nil {
				return err
			}
			fmt.Print(exp.FormatSweep("Figure 6: TPC-C on six-SSD RAID-0 — NOTPM and response time vs warehouses", pts))
		default:
			return fmt.Errorf("unknown experiment %q", id)
		}
		return nil
	}

	ids := []string{*expID}
	if *expID == "all" {
		ids = []string{"fig3", "fig4", "table1", "table2", "fig5", "fig6"}
	}
	for _, id := range ids {
		if err := run(id); err != nil {
			fmt.Fprintf(os.Stderr, "siasbench: %s: %v\n", id, err)
			os.Exit(1)
		}
		fmt.Println()
	}
}
