// Command siasload is a closed-loop load generator for siasserver: N
// workers each run begin → (reads|update mix) → commit in a loop over a
// pooled client, then the tool prints throughput, transaction latency
// percentiles and the engine/server counter deltas — overall and per shard,
// so group-commit effectiveness and WAL flush sharing are visible for every
// partition. Transactions whose keys all hash to one shard are attributed
// to it; the rest are reported as cross-shard.
//
// Usage:
//
//	siasload [-addr :4544] [-workers 8] [-txns 2000] [-keys 1024]
//	         [-value 64] [-read-frac 0.5] [-ops-per-txn 2] [-json FILE]
//	         [-metrics-addr HOST:PORT] [-workload kv|scan|index|xshard]
//	         [-state-out FILE] [-verify-state FILE]
//	         [-groups N] [-expect-crash] [-xshard-verify]
//
// With -json, a machine-readable result (the same numbers as the text
// report) is written to FILE for scripts/bench.sh to aggregate.
//
// With -workload index, the loop runs against a catalog table with a
// secondary index instead of the kv table: reads are index lookups, writes
// are typed row updates (mostly of a non-indexed column), and the run ends
// with an AS OF verification against a pre-churn snapshot; see index.go.
// -state-out/-verify-state persist and check that snapshot across a server
// restart, which is how CI proves catalog DDL and AS OF survive a crash.
//
// With -workload xshard, every transaction rewrites a whole cross-shard key
// group (one key per shard) to a fresh uniform token, exercising the 2PC
// commit path; -expect-crash makes a server dying mid-run (CI's
// SIAS_CRASHPOINT fault injection) the expected end, and -xshard-verify
// rereads every group on a restarted server — or a caught-up follower — and
// asserts all members are equal, proving all-or-nothing; see xshard.go.
//
// With -metrics-addr pointed at the server's observability listener, the
// tool scrapes /metrics before and after the measured run and folds the
// server-side latency histograms — per-op p50/p95/p99 and the WAL fsync
// distribution, as deltas covering exactly the measured window — into the
// report next to the client-observed latencies. Adding -trace-sample F
// traces that fraction of transactions end to end (TRACE envelopes) and
// fetches the sampled traces back from /debug/traces, reporting p50/p99 per
// commit-pipeline stage (route, prepare, decide, outcome, linger, fsync).
package main

import (
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"log"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"sias/internal/client"
	"sias/internal/engine"
	"sias/internal/obs"
	"sias/internal/repl"
	"sias/internal/server"
	"sias/internal/shard"
	"sias/internal/txn"
	"sias/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4544", "server address")
	workers := flag.Int("workers", 8, "concurrent closed-loop workers")
	txns := flag.Int("txns", 2000, "transactions per worker")
	keys := flag.Int64("keys", 1024, "keyspace size")
	valueSize := flag.Int("value", 64, "value size in bytes")
	readFrac := flag.Float64("read-frac", 0.5, "fraction of ops that are reads")
	opsPerTxn := flag.Int("ops-per-txn", 2, "data ops per transaction")
	affinity := flag.Bool("affinity", false, "partition-local transactions: all keys of a txn from one shard")
	replicas := flag.String("replicas", "", "comma-separated follower addresses; pure-read transactions are routed to them when they cover the worker's commit point (read-your-writes)")
	poolSize := flag.Int("pool", 0, "client connection pool size (default workers)")
	jsonPath := flag.String("json", "", "write a machine-readable result JSON to this file")
	statsOnly := flag.Bool("stats-only", false, "fetch STATS, print the raw reply JSON (to -json FILE if set, else stdout), and exit")
	metricsAddr := flag.String("metrics-addr", "", "server metrics listener to scrape for server-side latency histograms (empty = skip)")
	traceSample := flag.Float64("trace-sample", 0, "fraction of transactions traced end to end (TRACE envelopes); with -metrics-addr, the per-stage span breakdown from /debug/traces joins the report")
	workload := flag.String("workload", "kv", "workload: kv (key/value ops), scan (full-keyspace range scans) or index (typed table with secondary-index lookups and AS OF verification)")
	stateOut := flag.String("state-out", "", "index workload: write snapshot tokens and group counts to this file for a later -verify-state run")
	verifyPath := flag.String("verify-state", "", "verify a recovered server against a -state-out file and exit")
	groups := flag.Int("groups", 64, "xshard workload: cross-shard key groups (one key per shard each)")
	expectCrash := flag.Bool("expect-crash", false, "xshard workload: treat the server dying mid-run (transport failure, in-doubt commit) as the expected end instead of an error")
	verifyXshard := flag.Bool("xshard-verify", false, "verify cross-shard atomicity on a recovered server: reread every xshard group, assert all members equal, and exit")
	flag.Parse()
	if *poolSize <= 0 {
		*poolSize = *workers
	}
	if *statsOnly {
		if err := dumpStats(*addr, *jsonPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *verifyPath != "" {
		if err := verifyState(*addr, *verifyPath); err != nil {
			log.Fatal(err)
		}
		return
	}
	if *verifyXshard {
		if err := verifyXShard(*addr, *groups); err != nil {
			log.Fatal(err)
		}
		return
	}

	cfg := loadConfig{
		Addr: *addr, Workers: *workers, Txns: *txns, Keys: *keys,
		ValueSize: *valueSize, ReadFrac: *readFrac, OpsPerTxn: *opsPerTxn,
		PoolSize: *poolSize, Affinity: *affinity, MetricsAddr: *metricsAddr,
		Workload: *workload, TraceSample: *traceSample,
	}
	if *replicas != "" {
		for _, a := range strings.Split(*replicas, ",") {
			if a = strings.TrimSpace(a); a != "" {
				cfg.Replicas = append(cfg.Replicas, a)
			}
		}
	}
	switch *workload {
	case "kv":
		if err := run(cfg, *jsonPath); err != nil {
			log.Fatal(err)
		}
	case "scan":
		// Full-keyspace range scans in chunked OpScan calls: the cold-scan
		// benchmark workload, driving the server's readahead pipeline.
		if err := run(cfg, *jsonPath); err != nil {
			log.Fatal(err)
		}
	case "index":
		if err := runIndex(cfg, *jsonPath, *stateOut); err != nil {
			log.Fatal(err)
		}
	case "xshard":
		// Cross-shard 2PC atomicity workload: group rewrites spanning every
		// shard, with an all-or-nothing verify pass; see xshard.go.
		if err := runXShard(cfg, *jsonPath, *groups, *expectCrash); err != nil {
			log.Fatal(err)
		}
	default:
		log.Fatalf("unknown -workload %q (want kv, scan, index or xshard)", *workload)
	}
}

// dumpStats fetches one STATS reply and emits it as indented JSON — the
// handle CI scripts use to assert on replication lag and promotion state.
func dumpStats(addr, jsonPath string) error {
	c, err := client.Dial(addr, client.Options{PoolSize: 1})
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	blob, err := json.MarshalIndent(st, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if jsonPath != "" {
		return os.WriteFile(jsonPath, blob, 0o644)
	}
	_, err = os.Stdout.Write(blob)
	return err
}

type loadConfig struct {
	Addr      string  `json:"addr"`
	Workers   int     `json:"workers"`
	Txns      int     `json:"txns_per_worker"`
	Keys      int64   `json:"keys"`
	ValueSize int     `json:"value_size"`
	ReadFrac  float64 `json:"read_frac"`
	OpsPerTxn int     `json:"ops_per_txn"`
	Affinity  bool    `json:"affinity"`
	PoolSize  int     `json:"pool_size"`
	Workload  string  `json:"workload,omitempty"` // kv (default) or index
	// Replicas are follower addresses eligible to serve pure-read
	// transactions (client.Options.Replicas).
	Replicas []string `json:"replicas,omitempty"`
	Shards   int      `json:"shards"` // reported by the server
	// MetricsAddr is the server's observability listener; non-empty enables
	// the before/after /metrics scrape.
	MetricsAddr string `json:"metrics_addr,omitempty"`
	// TraceSample is the fraction of transactions traced end to end
	// (client.Options.TraceSample); with MetricsAddr set, the sampled
	// traces are fetched back and summarized per stage.
	TraceSample float64 `json:"trace_sample,omitempty"`
}

// latencyMs summarizes a latency distribution in milliseconds.
type latencyMs struct {
	P50 float64 `json:"p50_ms"`
	P95 float64 `json:"p95_ms"`
	P99 float64 `json:"p99_ms"`
	Max float64 `json:"max_ms"`
}

// shardReport is the per-shard slice of the run: engine counter deltas plus
// the latency of transactions routed entirely to this shard.
type shardReport struct {
	Shard            int       `json:"shard"`
	Commits          int64     `json:"commits"`
	CommitFlushes    int64     `json:"wal_flushes"`
	CommitBatches    int64     `json:"multi_tx_batches"`
	CommitMaxBatch   int64     `json:"max_batch"`
	WALPageWrites    int64     `json:"wal_page_writes"`
	FlushesPerCommit float64   `json:"flushes_per_commit"`
	Txns             int64     `json:"single_shard_txns"`
	TxnPerSec        float64   `json:"txn_per_sec"`
	Latency          latencyMs `json:"latency"`
}

// engineAgg is the aggregate engine delta over the run.
type engineAgg struct {
	Commits          int64   `json:"commits"`
	Aborts           int64   `json:"aborts"`
	CommitFlushes    int64   `json:"wal_flushes"`
	CommitBatches    int64   `json:"multi_tx_batches"`
	WALPageWrites    int64   `json:"wal_page_writes"`
	FlushesPerCommit float64 `json:"flushes_per_commit"`
	FlushSavedPct    float64 `json:"group_commit_saved_pct"`
	PoolHits         int64   `json:"pool_hits"`
	PoolMisses       int64   `json:"pool_misses"`
	PoolHitRatio     float64 `json:"pool_hit_ratio"`
	PoolEvictions    int64   `json:"pool_evictions"`
	PoolPartitions   int     `json:"pool_partitions"` // summed across shards
	PoolReadWaits    int64   `json:"pool_read_waits"` // singleflight joins on in-flight reads
	PrefetchIssued   int64   `json:"pool_prefetch_issued"`
	PrefetchCoalesce int64   `json:"pool_prefetch_coalesced"` // device reads saved by batching
	PrefetchWasted   int64   `json:"pool_prefetch_wasted"`
	DataReads        int64   `json:"data_reads"` // host read ops on the data device
}

// result is the full machine-readable run report (-json).
type result struct {
	Config     loadConfig    `json:"config"`
	ElapsedSec float64       `json:"elapsed_sec"`
	Committed  int64         `json:"committed"`
	TxnPerSec  float64       `json:"txn_per_sec"`
	Conflicts  int64         `json:"conflicts"`
	Drained    int64         `json:"drain_rejected"`
	Failures   int64         `json:"failures"`
	Latency    latencyMs     `json:"latency"`
	Engine     engineAgg     `json:"engine"`
	PerShard   []shardReport `json:"per_shard"`
	CrossShard struct {
		Txns    int64     `json:"txns"`
		Latency latencyMs `json:"latency"`
	} `json:"cross_shard"`
	// Index is present for -workload index: secondary-index counter deltas
	// and the AS OF verification outcome.
	Index *indexReport `json:"index,omitempty"`
	// Repl is present when the target server is a replication follower:
	// its per-shard applied-vs-primary-durable position after the run.
	Repl *repl.Stats `json:"repl,omitempty"`
	// Reads breaks routed read transactions down by serving side; present
	// when -replicas was given.
	Reads *readRouting `json:"read_routing,omitempty"`
	// Server carries server-side histogram percentiles scraped from
	// /metrics (-metrics-addr), as deltas over the measured window.
	Server *serverSide `json:"server,omitempty"`
	// Trace is the per-stage span breakdown fetched from /debug/traces;
	// present when -trace-sample and -metrics-addr are both set.
	Trace *traceBreakdown `json:"trace,omitempty"`
}

// serverSide is the /metrics slice of the report: what the server itself
// measured while the run executed, complementing the client-observed
// latencies (which include the network and the client runtime).
type serverSide struct {
	// Ops maps wire op name to its server-side latency over the run.
	Ops map[string]serverLat `json:"op_latency,omitempty"`
	// WALFsync is the WAL flush latency distribution, merged across shards.
	WALFsync *serverLat `json:"wal_fsync,omitempty"`
}

// serverLat summarizes one scraped histogram delta.
type serverLat struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P95   float64 `json:"p95_ms"`
	P99   float64 `json:"p99_ms"`
}

// scrapeHists fetches /metrics from the server's observability listener and
// parses every histogram series.
func scrapeHists(addr string) (map[string]*obs.ParsedHist, error) {
	resp, err := http.Get("http://" + addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s: HTTP %d", addr, resp.StatusCode)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	return obs.ParseHistograms(string(body))
}

// foldServerSide subtracts the before scrape from the after scrape and
// summarizes the op-latency and WAL-fsync histograms. A nil before (first
// scrape failed) degrades to since-server-start numbers.
func foldServerSide(before, after map[string]*obs.ParsedHist) *serverSide {
	sum := func(p *obs.ParsedHist) serverLat {
		return serverLat{
			Count: p.Count,
			P50:   p.Quantile(0.50) * 1e3,
			P95:   p.Quantile(0.95) * 1e3,
			P99:   p.Quantile(0.99) * 1e3,
		}
	}
	out := &serverSide{}
	var fsync *obs.ParsedHist
	for key, p := range after {
		d := p.Sub(before[key])
		switch {
		case strings.HasPrefix(key, `sias_server_op_seconds{op="`):
			if d.Count == 0 {
				continue
			}
			op := strings.TrimSuffix(strings.TrimPrefix(key, `sias_server_op_seconds{op="`), `"}`)
			if out.Ops == nil {
				out.Ops = map[string]serverLat{}
			}
			out.Ops[op] = sum(d)
		case strings.HasPrefix(key, "sias_wal_fsync_seconds"):
			if fsync == nil {
				fsync = d
			} else {
				fsync.Merge(d)
			}
		}
	}
	if fsync != nil && fsync.Count > 0 {
		lat := sum(fsync)
		out.WALFsync = &lat
	}
	if out.Ops == nil && out.WALFsync == nil {
		return nil
	}
	return out
}

// readRouting is the -replicas read breakdown: where BeginRead transactions
// actually ran after the read-your-writes LSN gate.
type readRouting struct {
	PrimaryReads int64   `json:"primary_reads"`
	ReplicaReads int64   `json:"replica_reads"`
	ReplicaFrac  float64 `json:"replica_frac"`
}

// txnSample is one committed transaction's outcome for latency attribution:
// shard >= 0 pins a single-shard transaction, shard == -1 is cross-shard.
type txnSample struct {
	lat   time.Duration
	shard int
}

func run(cfg loadConfig, jsonPath string) error {
	c, err := client.Dial(cfg.Addr, client.Options{PoolSize: cfg.PoolSize, Replicas: cfg.Replicas, TraceSample: cfg.TraceSample})
	if err != nil {
		return fmt.Errorf("dial %s: %w", cfg.Addr, err)
	}
	defer c.Close()

	// Preload the keyspace (idempotent across runs: existing keys are
	// updated instead of inserted).
	val := make([]byte, cfg.ValueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	if cfg.Workload == "scan" {
		// The scan workload measures reads of an existing dataset — often a
		// freshly restarted server with a cold pool. Preloading here would
		// rewrite every key and warm the pool, so it is skipped: run the kv
		// workload against the data dir first.
		fmt.Printf("scan workload: skipping preload (expects %d existing keys)\n", cfg.Keys)
	} else {
		preStart := time.Now()
		const batch = 256
		for lo := int64(0); lo < cfg.Keys; lo += batch {
			hi := lo + batch
			if hi > cfg.Keys {
				hi = cfg.Keys
			}
			tx, err := c.Begin()
			if err != nil {
				return fmt.Errorf("preload begin: %w", err)
			}
			for k := lo; k < hi; k++ {
				if err := tx.Insert(k, val); err != nil {
					if uerr := tx.Update(k, val); uerr != nil {
						tx.Abort()
						return fmt.Errorf("preload key %d: %w", k, err)
					}
				}
			}
			if err := tx.Commit(); err != nil {
				return fmt.Errorf("preload commit: %w", err)
			}
		}
		fmt.Printf("preloaded %d keys in %.2fs\n", cfg.Keys, time.Since(preStart).Seconds())
	}

	before, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	cfg.Shards = before.Router.Shards
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}

	// Snapshot the server-side histograms so the post-run scrape can be
	// reduced to exactly the measured window. A failed first scrape is
	// reported but not fatal — the run itself is unaffected.
	var mBefore map[string]*obs.ParsedHist
	if cfg.MetricsAddr != "" {
		if mBefore, err = scrapeHists(cfg.MetricsAddr); err != nil {
			fmt.Fprintf(os.Stderr, "metrics scrape (before): %v\n", err)
		}
	}

	// With -replicas, each worker runs over its own client: the
	// read-your-writes floor is a per-session property, and a shared client
	// would merge every worker's commit point into one global floor that
	// replicas chasing a live write mix could never cover.
	workerC := make([]*client.Client, cfg.Workers)
	for w := range workerC {
		workerC[w] = c
	}
	if len(cfg.Replicas) > 0 {
		for w := range workerC {
			wc, err := client.Dial(cfg.Addr, client.Options{PoolSize: 2, Replicas: cfg.Replicas, TraceSample: cfg.TraceSample})
			if err != nil {
				return fmt.Errorf("dial worker client: %w", err)
			}
			defer wc.Close()
			workerC[w] = wc
		}
	}

	var (
		mu        sync.Mutex
		conflicts int64
		drained   int64
		failures  int64
	)
	samples := make([][]txnSample, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			out := make([]txnSample, 0, cfg.Txns)
			myVal := make([]byte, cfg.ValueSize)
			copy(myVal, val)
			for i := 0; i < cfg.Txns; i++ {
				t0 := time.Now()
				home, err := runTxn(workerC[w], rng, cfg, myVal)
				switch {
				case err == nil:
					out = append(out, txnSample{lat: time.Since(t0), shard: home})
				case errors.Is(err, txn.ErrSerialization) || errors.Is(err, txn.ErrLockTimeout):
					mu.Lock()
					conflicts++
					mu.Unlock()
				case errors.Is(err, wire.ErrShuttingDown), errors.Is(err, engine.ErrReadOnly):
					// Both are handoff-window outcomes: the primary refused
					// because it drains, or the follower refused because it
					// has not finished promoting yet.
					mu.Lock()
					drained++
					mu.Unlock()
				default:
					mu.Lock()
					failures++
					n := failures
					mu.Unlock()
					if n <= 5 {
						fmt.Fprintf(os.Stderr, "worker %d txn %d: %v\n", w, i, err)
					}
				}
			}
			samples[w] = out
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}

	res := summarize(cfg, elapsed, samples, before, after)
	if cfg.MetricsAddr != "" {
		if mAfter, err := scrapeHists(cfg.MetricsAddr); err != nil {
			fmt.Fprintf(os.Stderr, "metrics scrape (after): %v\n", err)
		} else {
			res.Server = foldServerSide(mBefore, mAfter)
		}
		if cfg.TraceSample > 0 {
			if bd, err := scrapeTraces(cfg.MetricsAddr, 1000); err != nil {
				fmt.Fprintf(os.Stderr, "trace scrape: %v\n", err)
			} else {
				res.Trace = bd
			}
		}
	}
	res.Conflicts = conflicts
	res.Drained = drained
	res.Failures = failures
	if len(cfg.Replicas) > 0 {
		var p, r int64
		for _, wc := range workerC {
			wp, wr := wc.ReadRouting()
			p, r = p+wp, r+wr
		}
		res.Reads = &readRouting{
			PrimaryReads: p,
			ReplicaReads: r,
			ReplicaFrac:  ratio(r, p+r),
		}
	}
	printResult(res)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	return nil
}

// runTxn executes one closed-loop transaction and reports its home shard
// (-1 when its keys spanned shards); client-level retry already absorbs
// overload rejections. With -affinity every key is rejection-sampled onto
// one pre-picked shard, modelling a partitioned application whose
// transactions are partition-local by design.
func runTxn(c *client.Client, rng *rand.Rand, cfg loadConfig, val []byte) (int, error) {
	if cfg.Workload == "scan" {
		return runScanTxn(c, cfg)
	}
	anchor := -1
	if cfg.Affinity {
		anchor = shard.Of(rng.Int63n(cfg.Keys), cfg.Shards)
	}
	// Draw the op mix up front: a transaction with no writes can run as a
	// routed read-only transaction when replicas are configured. Drawing
	// before Begin keeps the op-level read fraction exactly cfg.ReadFrac.
	isRead := make([]bool, cfg.OpsPerTxn)
	pureRead := true
	for i := range isRead {
		isRead[i] = rng.Float64() < cfg.ReadFrac
		pureRead = pureRead && isRead[i]
	}
	var tx *client.Tx
	var err error
	if pureRead && len(cfg.Replicas) > 0 {
		tx, err = c.BeginRead()
	} else {
		tx, err = c.Begin()
	}
	if err != nil {
		return -1, err
	}
	home := -2 // no key touched yet
	for i := 0; i < cfg.OpsPerTxn; i++ {
		key := rng.Int63n(cfg.Keys)
		if anchor >= 0 {
			for shard.Of(key, cfg.Shards) != anchor {
				key = rng.Int63n(cfg.Keys)
			}
		}
		switch s := shard.Of(key, cfg.Shards); {
		case home == -2:
			home = s
		case home != s:
			home = -1
		}
		if isRead[i] {
			if _, err := tx.Get(key); err != nil {
				tx.Abort()
				return home, err
			}
		} else {
			if err := tx.Update(key, val); err != nil {
				tx.Abort()
				return home, err
			}
		}
	}
	if home == -2 {
		home = -1
	}
	return home, tx.Commit()
}

// runScanTxn sweeps the whole keyspace with chunked range scans inside one
// transaction. Chunking keeps every OpScan reply comfortably under
// wire.MaxFrame regardless of value size, while the server-side scans drive
// the pool's readahead pipeline. Scans always touch every shard, so the
// sample is labeled cross-shard (-1).
func runScanTxn(c *client.Client, cfg loadConfig) (int, error) {
	chunk := int64((4 << 20) / (cfg.ValueSize + 32))
	if chunk < 64 {
		chunk = 64
	}
	if chunk > 4096 {
		chunk = 4096
	}
	tx, err := c.Begin()
	if err != nil {
		return -1, err
	}
	var rows int64
	for lo := int64(0); lo < cfg.Keys; lo += chunk {
		hi := lo + chunk - 1
		if hi >= cfg.Keys {
			hi = cfg.Keys - 1
		}
		kvs, err := tx.Scan(lo, hi, 0)
		if err != nil {
			tx.Abort()
			return -1, err
		}
		rows += int64(len(kvs))
	}
	if err := tx.Commit(); err != nil {
		return -1, err
	}
	if rows != cfg.Keys {
		return -1, fmt.Errorf("scan returned %d rows, want %d", rows, cfg.Keys)
	}
	return -1, nil
}

// summarize folds worker samples and stats deltas into a result.
func summarize(cfg loadConfig, elapsed time.Duration, samples [][]txnSample, before, after server.StatsReply) result {
	res := result{Config: cfg, ElapsedSec: elapsed.Seconds(), Repl: after.Repl}

	var all []time.Duration
	perShard := make([][]time.Duration, cfg.Shards)
	var cross []time.Duration
	for _, ss := range samples {
		for _, s := range ss {
			all = append(all, s.lat)
			if s.shard >= 0 && s.shard < cfg.Shards {
				perShard[s.shard] = append(perShard[s.shard], s.lat)
			} else {
				cross = append(cross, s.lat)
			}
		}
	}
	res.Committed = int64(len(all))
	res.TxnPerSec = float64(len(all)) / elapsed.Seconds()
	res.Latency = summarizeLat(all)
	res.CrossShard.Txns = int64(len(cross))
	res.CrossShard.Latency = summarizeLat(cross)

	d := deltaEngine(shardAgg(before), shardAgg(after))
	res.Engine = engineAgg{
		Commits:          d.Commits,
		Aborts:           d.Aborts,
		CommitFlushes:    d.CommitFlushes,
		CommitBatches:    d.CommitBatches,
		WALPageWrites:    d.WALPageWrites,
		FlushesPerCommit: ratio(d.CommitFlushes, d.Commits),
		FlushSavedPct:    saved(d.Commits, d.CommitFlushes),
		PoolHits:         d.Pool.Hits,
		PoolMisses:       d.Pool.Misses,
		PoolHitRatio:     d.Pool.HitRatio(),
		PoolEvictions:    d.Pool.Evictions,
		PoolPartitions:   d.PoolPartitions,
		PoolReadWaits:    d.Pool.ReadWaits,
		PrefetchIssued:   d.Pool.PrefetchIssued,
		PrefetchCoalesce: d.Pool.PrefetchCoalesced,
		PrefetchWasted:   d.Pool.PrefetchWasted,
		DataReads:        d.Data.Reads,
	}

	for i := 0; i < cfg.Shards; i++ {
		var b, a engine.Stats
		if i < len(before.Shards) {
			b = before.Shards[i]
		}
		if i < len(after.Shards) {
			a = after.Shards[i]
		}
		sd := deltaEngine(b, a)
		res.PerShard = append(res.PerShard, shardReport{
			Shard:            i,
			Commits:          sd.Commits,
			CommitFlushes:    sd.CommitFlushes,
			CommitBatches:    sd.CommitBatches,
			CommitMaxBatch:   a.CommitMaxBatch, // high-water mark, not a delta
			WALPageWrites:    sd.WALPageWrites,
			FlushesPerCommit: ratio(sd.CommitFlushes, sd.Commits),
			Txns:             int64(len(perShard[i])),
			TxnPerSec:        float64(len(perShard[i])) / elapsed.Seconds(),
			Latency:          summarizeLat(perShard[i]),
		})
	}
	return res
}

func printResult(res result) {
	cfg := res.Config
	fmt.Printf("\n%d workers x %d txns (%d ops/txn, %.0f%% reads, %d keys, %dB values, %d shard(s))\n",
		cfg.Workers, cfg.Txns, cfg.OpsPerTxn, cfg.ReadFrac*100, cfg.Keys, cfg.ValueSize, cfg.Shards)
	fmt.Printf("elapsed            %.2fs\n", res.ElapsedSec)
	fmt.Printf("committed          %d (%.0f txn/s)\n", res.Committed, res.TxnPerSec)
	fmt.Printf("conflicts          %d\n", res.Conflicts)
	if res.Drained > 0 {
		fmt.Printf("drain-rejected     %d\n", res.Drained)
	}
	if res.Failures > 0 {
		fmt.Printf("failures           %d\n", res.Failures)
	}
	fmt.Printf("latency p50/p95/p99/max  %.2f / %.2f / %.2f / %.2f ms\n",
		res.Latency.P50, res.Latency.P95, res.Latency.P99, res.Latency.Max)

	fmt.Printf("\nengine deltas over the run:\n")
	fmt.Printf("  commits          %d\n", res.Engine.Commits)
	fmt.Printf("  aborts           %d\n", res.Engine.Aborts)
	fmt.Printf("  commit flushes   %d (group commit saved %.1f%% of flushes)\n",
		res.Engine.CommitFlushes, res.Engine.FlushSavedPct)
	fmt.Printf("  multi-tx batches %d\n", res.Engine.CommitBatches)
	fmt.Printf("  WAL page writes  %d\n", res.Engine.WALPageWrites)
	fmt.Printf("  pool hit ratio   %.4f (%d hits / %d misses, %d evictions, %d stripe(s))\n",
		res.Engine.PoolHitRatio, res.Engine.PoolHits, res.Engine.PoolMisses,
		res.Engine.PoolEvictions, res.Engine.PoolPartitions)
	if res.Engine.PoolReadWaits > 0 || res.Engine.PrefetchIssued > 0 {
		fmt.Printf("  pool read path   %d singleflight waits, prefetch %d issued / %d coalesced / %d wasted, %d device reads\n",
			res.Engine.PoolReadWaits, res.Engine.PrefetchIssued, res.Engine.PrefetchCoalesce,
			res.Engine.PrefetchWasted, res.Engine.DataReads)
	}

	if cfg.Shards > 1 {
		fmt.Printf("\nper-shard breakdown (single-shard txns attributed to their shard):\n")
		fmt.Printf("  %-5s %10s %10s %10s %8s %9s %9s %9s\n",
			"shard", "txns", "txn/s", "commits", "flushes", "fl/commit", "maxbatch", "p99 ms")
		for _, s := range res.PerShard {
			fmt.Printf("  %-5d %10d %10.0f %10d %8d %9.3f %9d %9.2f\n",
				s.Shard, s.Txns, s.TxnPerSec, s.Commits, s.CommitFlushes,
				s.FlushesPerCommit, s.CommitMaxBatch, s.Latency.P99)
		}
		fmt.Printf("  cross-shard txns %d (p50 %.2f ms, p99 %.2f ms)\n",
			res.CrossShard.Txns, res.CrossShard.Latency.P50, res.CrossShard.Latency.P99)
	}

	if res.Server != nil {
		fmt.Printf("\nserver-side latency over the run (from /metrics):\n")
		ops := make([]string, 0, len(res.Server.Ops))
		for op := range res.Server.Ops {
			ops = append(ops, op)
		}
		sort.Strings(ops)
		fmt.Printf("  %-8s %10s %9s %9s %9s\n", "op", "count", "p50 ms", "p95 ms", "p99 ms")
		for _, op := range ops {
			l := res.Server.Ops[op]
			fmt.Printf("  %-8s %10d %9.3f %9.3f %9.3f\n", op, l.Count, l.P50, l.P95, l.P99)
		}
		if f := res.Server.WALFsync; f != nil {
			fmt.Printf("  WAL fsync: %d flushes, p50 %.3f ms, p99 %.3f ms\n", f.Count, f.P50, f.P99)
		}
	}

	if res.Trace != nil {
		printTraceBreakdown(res.Trace)
	}

	if res.Reads != nil {
		fmt.Printf("\nread routing (-replicas %s):\n", strings.Join(cfg.Replicas, ","))
		fmt.Printf("  replica reads    %d (%.1f%% of routed read txns)\n",
			res.Reads.ReplicaReads, 100*res.Reads.ReplicaFrac)
		fmt.Printf("  primary reads    %d\n", res.Reads.PrimaryReads)
	}

	if res.Repl != nil {
		fmt.Printf("\nreplication (follower of %s, promoted=%v):\n", res.Repl.Primary, res.Repl.Promoted)
		for i, s := range res.Repl.Shards {
			fmt.Printf("  shard %d: applied LSN %d / primary durable %d (lag %d bytes)\n",
				i, s.AppliedLSN, s.PrimaryDurableLSN, s.LagBytes)
		}
	}
}

func summarizeLat(lats []time.Duration) latencyMs {
	if len(lats) == 0 {
		return latencyMs{}
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	return latencyMs{
		P50: ms(pct(sorted, 50)),
		P95: ms(pct(sorted, 95)),
		P99: ms(pct(sorted, 99)),
		Max: ms(sorted[len(sorted)-1]),
	}
}

func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func ratio(num, den int64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

func saved(commits, flushes int64) float64 {
	if commits <= 0 {
		return 0
	}
	return 100 * float64(commits-flushes) / float64(commits)
}

// shardAgg returns the aggregate engine view of a stats reply, tolerating
// replies that predate the per-shard field.
func shardAgg(r server.StatsReply) engine.Stats {
	if len(r.Shards) > 0 {
		return shard.Aggregate(r.Shards)
	}
	return r.Engine
}

// deltaEngine subtracts the monotonic counters of two engine snapshots.
func deltaEngine(a, b engine.Stats) engine.Stats {
	var d engine.Stats
	d.Commits = b.Commits - a.Commits
	d.Aborts = b.Aborts - a.Aborts
	d.IndexLookups = b.IndexLookups - a.IndexLookups
	d.IndexInserts = b.IndexInserts - a.IndexInserts
	d.CommitFlushes = b.CommitFlushes - a.CommitFlushes
	d.CommitBatches = b.CommitBatches - a.CommitBatches
	d.WALPageWrites = b.WALPageWrites - a.WALPageWrites
	d.Pool.Hits = b.Pool.Hits - a.Pool.Hits
	d.Pool.Misses = b.Pool.Misses - a.Pool.Misses
	d.Pool.Evictions = b.Pool.Evictions - a.Pool.Evictions
	d.Pool.ReadWaits = b.Pool.ReadWaits - a.Pool.ReadWaits
	d.Pool.PrefetchIssued = b.Pool.PrefetchIssued - a.Pool.PrefetchIssued
	d.Pool.PrefetchCoalesced = b.Pool.PrefetchCoalesced - a.Pool.PrefetchCoalesced
	d.Pool.PrefetchWasted = b.Pool.PrefetchWasted - a.Pool.PrefetchWasted
	d.PoolPartitions = b.PoolPartitions
	d.Data.Reads = b.Data.Reads - a.Data.Reads
	d.Data.Writes = b.Data.Writes - a.Data.Writes
	d.Data.BytesRead = b.Data.BytesRead - a.Data.BytesRead
	d.Data.BytesWritten = b.Data.BytesWritten - a.Data.BytesWritten
	return d
}
