// Command siasload is a closed-loop load generator for siasserver: N
// workers each run begin → (reads|update mix) → commit in a loop over a
// pooled client, then the tool prints throughput, transaction latency
// percentiles and the engine/server counter deltas (including how well
// group commit coalesced WAL flushes).
//
// Usage:
//
//	siasload [-addr :4544] [-workers 8] [-txns 2000] [-keys 1024]
//	         [-value 64] [-read-frac 0.5] [-ops-per-txn 2]
package main

import (
	"errors"
	"flag"
	"fmt"
	"log"
	"math/rand"
	"os"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"sias/internal/client"
	"sias/internal/server"
	"sias/internal/txn"
	"sias/internal/wire"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:4544", "server address")
	workers := flag.Int("workers", 8, "concurrent closed-loop workers")
	txns := flag.Int("txns", 2000, "transactions per worker")
	keys := flag.Int64("keys", 1024, "keyspace size")
	valueSize := flag.Int("value", 64, "value size in bytes")
	readFrac := flag.Float64("read-frac", 0.5, "fraction of ops that are reads")
	opsPerTxn := flag.Int("ops-per-txn", 2, "data ops per transaction")
	poolSize := flag.Int("pool", 0, "client connection pool size (default workers)")
	flag.Parse()
	if *poolSize <= 0 {
		*poolSize = *workers
	}

	if err := run(*addr, *workers, *txns, *keys, *valueSize, *readFrac, *opsPerTxn, *poolSize); err != nil {
		log.Fatal(err)
	}
}

func run(addr string, workers, txns int, keys int64, valueSize int, readFrac float64, opsPerTxn, poolSize int) error {
	c, err := client.Dial(addr, client.Options{PoolSize: poolSize})
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()

	// Preload the keyspace (idempotent across runs: existing keys are
	// updated instead of inserted).
	val := make([]byte, valueSize)
	for i := range val {
		val[i] = byte('a' + i%26)
	}
	preStart := time.Now()
	const batch = 256
	for lo := int64(0); lo < keys; lo += batch {
		hi := lo + batch
		if hi > keys {
			hi = keys
		}
		tx, err := c.Begin()
		if err != nil {
			return fmt.Errorf("preload begin: %w", err)
		}
		for k := lo; k < hi; k++ {
			if err := tx.Insert(k, val); err != nil {
				if uerr := tx.Update(k, val); uerr != nil {
					tx.Abort()
					return fmt.Errorf("preload key %d: %w", k, err)
				}
			}
		}
		if err := tx.Commit(); err != nil {
			return fmt.Errorf("preload commit: %w", err)
		}
	}
	fmt.Printf("preloaded %d keys in %.2fs\n", keys, time.Since(preStart).Seconds())

	before, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}

	var (
		committed atomic.Int64
		conflicts atomic.Int64
		drained   atomic.Int64
		failures  atomic.Int64
	)
	latencies := make([][]time.Duration, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			lats := make([]time.Duration, 0, txns)
			myVal := make([]byte, valueSize)
			copy(myVal, val)
			for i := 0; i < txns; i++ {
				t0 := time.Now()
				err := runTxn(c, rng, keys, readFrac, opsPerTxn, myVal)
				switch {
				case err == nil:
					committed.Add(1)
					lats = append(lats, time.Since(t0))
				case errors.Is(err, txn.ErrSerialization) || errors.Is(err, txn.ErrLockTimeout):
					conflicts.Add(1)
				case errors.Is(err, wire.ErrShuttingDown):
					drained.Add(1)
				default:
					if failures.Add(1) <= 5 {
						fmt.Fprintf(os.Stderr, "worker %d txn %d: %v\n", w, i, err)
					}
				}
			}
			latencies[w] = lats
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}

	var all []time.Duration
	for _, l := range latencies {
		all = append(all, l...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })

	fmt.Printf("\n%d workers x %d txns (%d ops/txn, %.0f%% reads, %d keys, %dB values)\n",
		workers, txns, opsPerTxn, readFrac*100, keys, valueSize)
	fmt.Printf("elapsed            %.2fs\n", elapsed.Seconds())
	fmt.Printf("committed          %d (%.0f txn/s)\n", committed.Load(), float64(committed.Load())/elapsed.Seconds())
	fmt.Printf("conflicts          %d\n", conflicts.Load())
	if n := drained.Load(); n > 0 {
		fmt.Printf("drain-rejected     %d\n", n)
	}
	if n := failures.Load(); n > 0 {
		fmt.Printf("failures           %d\n", n)
	}
	if len(all) > 0 {
		fmt.Printf("latency p50/p95/p99/max  %.2f / %.2f / %.2f / %.2f ms\n",
			ms(pct(all, 50)), ms(pct(all, 95)), ms(pct(all, 99)), ms(all[len(all)-1]))
	}

	d := delta(before, after)
	fmt.Printf("\nengine deltas over the run:\n")
	fmt.Printf("  commits          %d\n", d.Engine.Commits)
	fmt.Printf("  aborts           %d\n", d.Engine.Aborts)
	fmt.Printf("  commit flushes   %d (group commit saved %.1f%% of flushes)\n",
		d.Engine.CommitFlushes, saved(d.Engine.Commits, d.Engine.CommitFlushes))
	fmt.Printf("  multi-tx batches %d\n", d.Engine.CommitBatches)
	fmt.Printf("  WAL page writes  %d\n", d.Engine.WALPageWrites)
	fmt.Printf("  data dev         %s\n", d.Engine.Data)
	fmt.Printf("server deltas: requests=%d overloaded=%d connections=%d\n",
		d.Server.Requests, d.Server.Overloaded, d.Server.Connections)
	return nil
}

// runTxn executes one closed-loop transaction; client-level retry already
// absorbs overload rejections.
func runTxn(c *client.Client, rng *rand.Rand, keys int64, readFrac float64, ops int, val []byte) error {
	tx, err := c.Begin()
	if err != nil {
		return err
	}
	for i := 0; i < ops; i++ {
		key := rng.Int63n(keys)
		if rng.Float64() < readFrac {
			if _, err := tx.Get(key); err != nil {
				tx.Abort()
				return err
			}
		} else {
			if err := tx.Update(key, val); err != nil {
				tx.Abort()
				return err
			}
		}
	}
	return tx.Commit()
}

func pct(sorted []time.Duration, p int) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

func ms(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }

func saved(commits, flushes int64) float64 {
	if commits <= 0 {
		return 0
	}
	return 100 * float64(commits-flushes) / float64(commits)
}

// delta subtracts the monotonic counters of two stats snapshots.
func delta(a, b server.StatsReply) server.StatsReply {
	var d server.StatsReply
	d.Engine.Commits = b.Engine.Commits - a.Engine.Commits
	d.Engine.Aborts = b.Engine.Aborts - a.Engine.Aborts
	d.Engine.CommitFlushes = b.Engine.CommitFlushes - a.Engine.CommitFlushes
	d.Engine.CommitBatches = b.Engine.CommitBatches - a.Engine.CommitBatches
	d.Engine.WALPageWrites = b.Engine.WALPageWrites - a.Engine.WALPageWrites
	d.Engine.Data.Reads = b.Engine.Data.Reads - a.Engine.Data.Reads
	d.Engine.Data.Writes = b.Engine.Data.Writes - a.Engine.Data.Writes
	d.Engine.Data.BytesRead = b.Engine.Data.BytesRead - a.Engine.Data.BytesRead
	d.Engine.Data.BytesWritten = b.Engine.Data.BytesWritten - a.Engine.Data.BytesWritten
	d.Server.Requests = b.Server.Requests - a.Server.Requests
	d.Server.Overloaded = b.Server.Overloaded - a.Server.Overloaded
	d.Server.Connections = b.Server.Connections - a.Server.Connections
	return d
}
