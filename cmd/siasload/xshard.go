package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"sias/internal/client"
	"sias/internal/shard"
	"sias/internal/txn"
)

// The xshard workload exercises cross-shard (2PC) atomicity: the keyspace is
// carved into groups of one key per shard, every cross-shard transaction
// rewrites all members of one group to the same fresh token, and the verify
// pass asserts every group still holds one uniform value — all-or-nothing
// regardless of where the server was killed. The group layout is a pure
// function of (shards, groups), so a verify run against a restarted primary
// or a caught-up follower recomputes it without a state file.
//
// With -expect-crash, the run treats a dying server (transport failures,
// client.ErrInDoubt) as its expected end: CI arms SIAS_CRASHPOINT on the
// server, drives this workload until the process kills itself at a 2PC phase
// boundary, restarts the server, and reruns with -xshard-verify.

// xshardGroups lays out the group membership: groups rows of one key per
// shard, assigned deterministically by walking the keyspace upward from 0.
func xshardGroups(shards, groups int) [][]int64 {
	per := make([][]int64, shards)
	filled := 0
	for k := int64(0); filled < shards*groups; k++ {
		s := shard.Of(k, shards)
		if len(per[s]) < groups {
			per[s] = append(per[s], k)
			filled++
		}
	}
	out := make([][]int64, groups)
	for g := range out {
		row := make([]int64, shards)
		for s := 0; s < shards; s++ {
			row[s] = per[s][g]
		}
		out[g] = row
	}
	return out
}

// xshardResult is the machine-readable xshard run report (-json).
type xshardResult struct {
	Workload  string  `json:"workload"`
	Shards    int     `json:"shards"`
	Groups    int     `json:"groups"`
	Committed int64   `json:"committed"`
	Conflicts int64   `json:"conflicts"`
	InDoubt   int64   `json:"in_doubt"`
	Crashed   bool    `json:"crashed"`
	Elapsed   float64 `json:"elapsed_sec"`
	// Trace is the per-stage span breakdown from /debug/traces; present when
	// -trace-sample and -metrics-addr are both set. For this workload the
	// 2PC stages (route, prepare, decide, outcome) dominate.
	Trace *traceBreakdown `json:"trace,omitempty"`
}

// runXShard preloads the groups with single-shard transactions (one batch
// per shard, so no 2PC record is logged before the churn starts), then churns
// cross-shard group rewrites from cfg.Workers workers. Unless -expect-crash
// is set, the run ends with an in-process verify pass.
func runXShard(cfg loadConfig, jsonPath string, groups int, expectCrash bool) error {
	opts := client.Options{PoolSize: cfg.PoolSize, TraceSample: cfg.TraceSample}
	if expectCrash {
		// Retries would only thrash against a server that killed itself at a
		// crashpoint; fail fast so the run ends at the first broken commit.
		opts.MaxRetries = 0
	}
	c, err := client.Dial(cfg.Addr, opts)
	if err != nil {
		return fmt.Errorf("dial %s: %w", cfg.Addr, err)
	}
	defer c.Close()

	st, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	shards := st.Router.Shards
	if shards < 2 {
		return fmt.Errorf("xshard workload needs >= 2 shards, server has %d", shards)
	}
	members := xshardGroups(shards, groups)

	// Preload: every member of shard s in one single-shard transaction.
	// Idempotent across runs (insert falls back to update).
	for s := 0; s < shards; s++ {
		tx, err := c.Begin()
		if err != nil {
			return fmt.Errorf("preload begin: %w", err)
		}
		for g := 0; g < groups; g++ {
			k := members[g][s]
			val := []byte(fmt.Sprintf("g%d-init", g))
			if err := tx.Insert(k, val); err != nil {
				if uerr := tx.Update(k, val); uerr != nil {
					tx.Abort()
					return fmt.Errorf("preload key %d: %w", k, err)
				}
			}
		}
		if err := tx.Commit(); err != nil {
			return fmt.Errorf("preload commit shard %d: %w", s, err)
		}
	}
	fmt.Printf("preloaded %d groups x %d shards\n", groups, shards)

	var (
		committed atomic.Int64
		conflicts atomic.Int64
		inDoubt   atomic.Int64
		crashed   atomic.Bool
		stop      atomic.Bool
	)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*104729 + 7))
			for i := 0; i < cfg.Txns && !stop.Load(); i++ {
				g := rng.Intn(groups)
				token := []byte(fmt.Sprintf("g%d-w%d-i%d", g, w, i))
				err := xshardTxn(c, members[g], token)
				switch {
				case err == nil:
					committed.Add(1)
				case errors.Is(err, txn.ErrSerialization) || errors.Is(err, txn.ErrLockTimeout):
					conflicts.Add(1)
				case expectCrash:
					// Any transport-level failure is the server dying at its
					// crashpoint — the event this mode waits for.
					if errors.Is(err, client.ErrInDoubt) {
						inDoubt.Add(1)
					}
					crashed.Store(true)
					stop.Store(true)
				default:
					stop.Store(true)
					fmt.Fprintf(os.Stderr, "worker %d txn %d: %v\n", w, i, err)
				}
			}
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	res := xshardResult{
		Workload: "xshard", Shards: shards, Groups: groups,
		Committed: committed.Load(), Conflicts: conflicts.Load(),
		InDoubt: inDoubt.Load(), Crashed: crashed.Load(),
		Elapsed: elapsed.Seconds(),
	}
	fmt.Printf("xshard churn: %d committed, %d conflicts, %d in-doubt, crashed=%v in %.2fs\n",
		res.Committed, res.Conflicts, res.InDoubt, res.Crashed, res.Elapsed)
	if cfg.MetricsAddr != "" && cfg.TraceSample > 0 && !res.Crashed {
		if bd, err := scrapeTraces(cfg.MetricsAddr, 1000); err != nil {
			fmt.Fprintf(os.Stderr, "trace scrape: %v\n", err)
		} else if bd != nil {
			res.Trace = bd
			printTraceBreakdown(bd)
		}
	}
	if jsonPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
	}
	if expectCrash {
		if !res.Crashed {
			return fmt.Errorf("xshard: -expect-crash set but the server survived %d committed transactions", res.Committed)
		}
		return nil
	}
	if res.Crashed || res.Committed == 0 {
		return fmt.Errorf("xshard churn failed: committed=%d crashed=%v", res.Committed, res.Crashed)
	}
	return verifyXShard(cfg.Addr, groups)
}

// xshardTxn rewrites every member of one group to the same token in a single
// cross-shard transaction.
func xshardTxn(c *client.Client, keys []int64, token []byte) error {
	tx, err := c.Begin()
	if err != nil {
		return err
	}
	for _, k := range keys {
		if err := tx.Update(k, token); err != nil {
			tx.Abort()
			return err
		}
	}
	return tx.Commit()
}

// verifyXShard rereads every group in one snapshot transaction and asserts
// all members hold the identical value — the all-or-nothing property 2PC
// guarantees across any crash. Works against the restarted primary and
// against a caught-up follower (read-only transactions).
func verifyXShard(addr string, groups int) error {
	c, err := client.Dial(addr, client.Options{PoolSize: 1})
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()
	st, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	shards := st.Router.Shards
	if shards < 2 {
		return fmt.Errorf("xshard verify needs >= 2 shards, server has %d", shards)
	}
	members := xshardGroups(shards, groups)

	tx, err := c.Begin()
	if err != nil {
		return fmt.Errorf("verify begin: %w", err)
	}
	defer tx.Abort()
	torn := 0
	for g, keys := range members {
		var first []byte
		for j, k := range keys {
			v, err := tx.Get(k)
			if err != nil {
				return fmt.Errorf("verify group %d key %d: %w", g, k, err)
			}
			if j == 0 {
				first = v
			} else if string(v) != string(first) {
				torn++
				fmt.Fprintf(os.Stderr, "TORN group %d: key %d = %q, key %d = %q\n",
					g, keys[0], first, k, v)
				break
			}
		}
	}
	if torn > 0 {
		return fmt.Errorf("xshard verify: %d of %d groups torn — cross-shard atomicity violated", torn, groups)
	}
	fmt.Printf("xshard verify: %d groups x %d shards uniform — all-or-nothing holds\n", groups, shards)
	return nil
}
