package main

// Trace-breakdown reporting: after a -trace-sample run, the tool pulls the
// sampled traces back off the server's /debug/traces endpoint and summarizes
// span durations by stage name, turning the distributed spans into the
// commit-pipeline latency table printed next to the client-observed numbers.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
)

// traceStage is one span name's duration summary across the fetched traces.
type traceStage struct {
	Count int64   `json:"count"`
	P50   float64 `json:"p50_ms"`
	P99   float64 `json:"p99_ms"`
}

// traceBreakdown is the /debug/traces slice of the report: per-stage span
// latency over the sampled traces. Stage keys are span names — wire op names
// (BEGIN, COMMIT) plus the commit-pipeline stages (route, prepare, decide,
// outcome, linger, fsync) and the follower's repl.apply.
type traceBreakdown struct {
	Traces int                   `json:"traces"`
	Stages map[string]traceStage `json:"stages"`
}

// scrapeTraces fetches up to limit recent traces from the server's
// observability listener and folds their spans into a per-stage breakdown.
// Returns nil (no error) when the server has no traces.
func scrapeTraces(addr string, limit int) (*traceBreakdown, error) {
	resp, err := http.Get(fmt.Sprintf("http://%s/debug/traces?limit=%d", addr, limit))
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("scrape %s/debug/traces: HTTP %d", addr, resp.StatusCode)
	}
	var env struct {
		Traces []struct {
			Spans []struct {
				Name       string  `json:"name"`
				DurationMs float64 `json:"duration_ms"`
			} `json:"spans"`
		} `json:"traces"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil {
		return nil, err
	}
	if len(env.Traces) == 0 {
		return nil, nil
	}
	durs := map[string][]float64{}
	for _, t := range env.Traces {
		for _, s := range t.Spans {
			durs[s.Name] = append(durs[s.Name], s.DurationMs)
		}
	}
	bd := &traceBreakdown{Traces: len(env.Traces), Stages: map[string]traceStage{}}
	for name, ds := range durs {
		sort.Float64s(ds)
		bd.Stages[name] = traceStage{Count: int64(len(ds)), P50: pctF(ds, 50), P99: pctF(ds, 99)}
	}
	return bd, nil
}

func pctF(sorted []float64, p int) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := len(sorted) * p / 100
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// traceStageOrder lists the known commit-pipeline stages in execution order;
// printTraceBreakdown shows them first, then any other span names sorted.
var traceStageOrder = []string{
	"BEGIN", "COMMIT", "route", "prepare", "decide", "outcome",
	"linger", "fsync", "repl.apply",
}

func printTraceBreakdown(bd *traceBreakdown) {
	fmt.Printf("\nper-stage trace breakdown over %d sampled trace(s) (from /debug/traces):\n", bd.Traces)
	fmt.Printf("  %-10s %8s %9s %9s\n", "stage", "spans", "p50 ms", "p99 ms")
	printed := map[string]bool{}
	show := func(name string) {
		st, ok := bd.Stages[name]
		if !ok || printed[name] {
			return
		}
		printed[name] = true
		fmt.Printf("  %-10s %8d %9.3f %9.3f\n", name, st.Count, st.P50, st.P99)
	}
	for _, name := range traceStageOrder {
		show(name)
	}
	rest := make([]string, 0, len(bd.Stages))
	for name := range bd.Stages {
		if !printed[name] {
			rest = append(rest, name)
		}
	}
	sort.Strings(rest)
	for _, name := range rest {
		show(name)
	}
}
