// Index workload (-workload index): typed rows in a catalog table with a
// secondary index, exercising the SIAS claim the kv workload cannot — that
// non-indexed-column updates write zero index pages — plus AS OF reads.
//
// The workload creates table "load_orders" (id pk, grp indexed, note) and
// index "by_grp", preloads -keys rows spread over groups, snapshots the
// database, then runs the closed loop: reads are secondary-index lookups of
// a random group, writes are row updates (mostly of the non-indexed note
// column; 1 in 8 moves the row to a new group through the index). After the
// run it re-reads a sample of groups AS OF the pre-churn snapshot and
// verifies the counts are unchanged.
//
// With -state-out FILE the snapshot tokens and per-group counts are written
// to FILE; a later `siasload -verify-state FILE` run — typically against a
// server that was SIGKILLed and restarted — checks that the catalog, the
// index and the AS OF snapshot all survived recovery.
package main

import (
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"sync"
	"time"

	"sias/internal/client"
	"sias/internal/engine"
	"sias/internal/shard"
	"sias/internal/tuple"
	"sias/internal/txn"
	"sias/internal/wire"
)

const (
	idxTable = "load_orders"
	idxIndex = "by_grp"
	idxCol   = "grp"
)

func idxSchema() *tuple.Schema {
	return tuple.NewSchema(
		tuple.Column{Name: "id", Type: tuple.TypeInt64},
		tuple.Column{Name: idxCol, Type: tuple.TypeInt64},
		tuple.Column{Name: "note", Type: tuple.TypeString},
	)
}

// indexReport is the -workload index slice of the result JSON.
type indexReport struct {
	Table         string  `json:"table"`
	Index         string  `json:"index"`
	Groups        int64   `json:"groups"`
	IndexLookups  int64   `json:"index_lookups"` // engine counter delta
	IndexInserts  int64   `json:"index_inserts"` // engine counter delta
	RowsReturned  int64   `json:"rows_returned"` // rows gathered by lookups
	LookupsPerSec float64 `json:"lookups_per_sec"`
	// AsOfGroupsChecked sampled groups were re-read AS OF the pre-churn
	// snapshot after the run; AsOfVerified is whether every count matched.
	AsOfGroupsChecked int  `json:"asof_groups_checked"`
	AsOfVerified      bool `json:"asof_verified"`
}

// indexState is the -state-out file: everything -verify-state needs to prove
// the catalog and a pre-crash snapshot survived a restart.
type indexState struct {
	Table  string           `json:"table"`
	Index  string           `json:"index"`
	Tokens []uint64         `json:"tokens"`
	Groups map[string]int64 `json:"group_counts"` // group -> rows at the snapshot
}

// groupsFor sizes the group space so lookups return a handful of rows each.
func groupsFor(keys int64) int64 {
	g := keys / 64
	if g < 4 {
		g = 4
	}
	return g
}

// sampleGroups picks a deterministic spread of groups to track.
func sampleGroups(groups int64) []int64 {
	n := int64(8)
	if n > groups {
		n = groups
	}
	out := make([]int64, 0, n)
	for i := int64(0); i < n; i++ {
		out = append(out, i*groups/n)
	}
	return out
}

// groupCounts reads the tracked groups' row counts through the index.
func groupCounts(tx *client.Tx, groups []int64) (map[string]int64, error) {
	out := make(map[string]int64, len(groups))
	for _, g := range groups {
		rows, err := tx.IndexLookup(idxTable, idxIndex, g)
		if err != nil {
			return nil, fmt.Errorf("lookup group %d: %w", g, err)
		}
		out[strconv.FormatInt(g, 10)] = int64(len(rows))
	}
	return out, nil
}

func runIndex(cfg loadConfig, jsonPath, statePath string) error {
	c, err := client.Dial(cfg.Addr, client.Options{PoolSize: cfg.PoolSize})
	if err != nil {
		return fmt.Errorf("dial %s: %w", cfg.Addr, err)
	}
	defer c.Close()

	// DDL is idempotent across runs: an existing table/index is reused.
	if err := c.CreateTable(idxTable, idxSchema(), "id"); err != nil && !errors.Is(err, engine.ErrExists) {
		return fmt.Errorf("create table: %w", err)
	}
	if err := c.CreateIndex(idxTable, idxIndex, idxCol); err != nil && !errors.Is(err, engine.ErrExists) {
		return fmt.Errorf("create index: %w", err)
	}

	groups := groupsFor(cfg.Keys)
	preStart := time.Now()
	const batch = 256
	for lo := int64(0); lo < cfg.Keys; lo += batch {
		hi := lo + batch
		if hi > cfg.Keys {
			hi = cfg.Keys
		}
		tx, err := c.Begin()
		if err != nil {
			return fmt.Errorf("preload begin: %w", err)
		}
		for k := lo; k < hi; k++ {
			row := tuple.Row{k, k % groups, "seed"}
			if err := tx.InsertRow(idxTable, row); err != nil {
				if uerr := tx.UpdateRow(idxTable, row); uerr != nil {
					tx.Abort()
					return fmt.Errorf("preload row %d: %w", k, err)
				}
			}
		}
		if err := tx.Commit(); err != nil {
			return fmt.Errorf("preload commit: %w", err)
		}
	}
	fmt.Printf("preloaded %d rows across %d groups in %.2fs\n", cfg.Keys, groups, time.Since(preStart).Seconds())

	// The AS OF baseline: snapshot tokens and the tracked groups' counts.
	tokens, err := c.Snapshot()
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	tracked := sampleGroups(groups)
	base, err := c.Begin()
	if err != nil {
		return err
	}
	baseCounts, err := groupCounts(base, tracked)
	if err != nil {
		base.Abort()
		return err
	}
	if err := base.Commit(); err != nil {
		return err
	}

	before, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}
	cfg.Shards = before.Router.Shards
	if cfg.Shards <= 0 {
		cfg.Shards = 1
	}

	var (
		mu        sync.Mutex
		conflicts int64
		drained   int64
		failures  int64
		rowsOut   int64
		lookups   int64
	)
	samples := make([][]txnSample, cfg.Workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)*7919 + 1))
			out := make([]txnSample, 0, cfg.Txns)
			for i := 0; i < cfg.Txns; i++ {
				t0 := time.Now()
				home, nRows, nLook, err := runIdxTxn(c, rng, cfg, groups)
				switch {
				case err == nil:
					out = append(out, txnSample{lat: time.Since(t0), shard: home})
					mu.Lock()
					rowsOut += nRows
					lookups += nLook
					mu.Unlock()
				case errors.Is(err, txn.ErrSerialization) || errors.Is(err, txn.ErrLockTimeout):
					mu.Lock()
					conflicts++
					mu.Unlock()
				case errors.Is(err, wire.ErrShuttingDown), errors.Is(err, engine.ErrReadOnly):
					mu.Lock()
					drained++
					mu.Unlock()
				default:
					mu.Lock()
					failures++
					n := failures
					mu.Unlock()
					if n <= 5 {
						fmt.Fprintf(os.Stderr, "worker %d txn %d: %v\n", w, i, err)
					}
				}
			}
			samples[w] = out
		}(w)
	}
	wg.Wait()
	elapsed := time.Since(start)

	after, err := c.Stats()
	if err != nil {
		return fmt.Errorf("stats: %w", err)
	}

	// AS OF the pre-churn snapshot: the tracked groups must count exactly as
	// they did before the run, no matter what the churn moved.
	asOf, err := c.BeginAt(tokens)
	if err != nil {
		return fmt.Errorf("begin AS OF: %w", err)
	}
	asOfCounts, err := groupCounts(asOf, tracked)
	asOf.Abort()
	if err != nil {
		return fmt.Errorf("AS OF lookups: %w", err)
	}
	verified := true
	for g, want := range baseCounts {
		if asOfCounts[g] != want {
			verified = false
			fmt.Fprintf(os.Stderr, "AS OF mismatch: group %s has %d rows at snapshot, expected %d\n", g, asOfCounts[g], want)
		}
	}

	res := summarize(cfg, elapsed, samples, before, after)
	res.Conflicts = conflicts
	res.Drained = drained
	res.Failures = failures
	d := deltaEngine(shardAgg(before), shardAgg(after))
	res.Index = &indexReport{
		Table:             idxTable,
		Index:             idxIndex,
		Groups:            groups,
		IndexLookups:      d.IndexLookups,
		IndexInserts:      d.IndexInserts,
		RowsReturned:      rowsOut,
		LookupsPerSec:     float64(lookups) / elapsed.Seconds(),
		AsOfGroupsChecked: len(tracked),
		AsOfVerified:      verified,
	}
	printResult(res)
	fmt.Printf("\nindex workload (%s/%s, %d groups):\n", idxTable, idxIndex, groups)
	fmt.Printf("  index lookups    %d (%.0f/s, %d rows returned)\n", d.IndexLookups, res.Index.LookupsPerSec, rowsOut)
	fmt.Printf("  index inserts    %d\n", d.IndexInserts)
	fmt.Printf("  AS OF verify     %d groups, match=%v\n", len(tracked), verified)

	if jsonPath != "" {
		blob, err := json.MarshalIndent(res, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(jsonPath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("\nwrote %s\n", jsonPath)
	}
	if statePath != "" {
		blob, err := json.MarshalIndent(indexState{
			Table: idxTable, Index: idxIndex, Tokens: tokens, Groups: baseCounts,
		}, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(statePath, append(blob, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("wrote snapshot state %s\n", statePath)
	}
	if !verified {
		return fmt.Errorf("AS OF verification failed")
	}
	return nil
}

// runIdxTxn executes one typed transaction: index lookups for reads, row
// updates for writes (1 in 8 moves the row to another group, the rest touch
// only the non-indexed note column — the zero-index-page-write path).
func runIdxTxn(c *client.Client, rng *rand.Rand, cfg loadConfig, groups int64) (home int, rows, lookups int64, err error) {
	tx, err := c.Begin()
	if err != nil {
		return -1, 0, 0, err
	}
	home = -2
	for i := 0; i < cfg.OpsPerTxn; i++ {
		if rng.Float64() < cfg.ReadFrac {
			got, lerr := tx.IndexLookup(idxTable, idxIndex, rng.Int63n(groups))
			if lerr != nil {
				tx.Abort()
				return -1, rows, lookups, lerr
			}
			rows += int64(len(got))
			lookups++
			home = -1 // index lookups fan out across every shard
			continue
		}
		id := rng.Int63n(cfg.Keys)
		grp := id % groups
		if rng.Intn(8) == 0 {
			grp = rng.Int63n(groups) // indexed-column update: row changes group
		}
		if uerr := tx.UpdateRow(idxTable, tuple.Row{id, grp, "churn"}); uerr != nil {
			tx.Abort()
			return -1, rows, lookups, uerr
		}
		switch s := shard.Of(id, cfg.Shards); {
		case home == -2:
			home = s
		case home != s:
			home = -1
		}
	}
	if home == -2 {
		home = -1
	}
	return home, rows, lookups, tx.Commit()
}

// verifyState checks a recovered server against a -state-out file: the
// catalog still lists the table and index, live lookups work, and an AS OF
// read at the pre-crash tokens reproduces the recorded group counts.
func verifyState(addr, path string) error {
	blob, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var st indexState
	if err := json.Unmarshal(blob, &st); err != nil {
		return fmt.Errorf("decode %s: %w", path, err)
	}
	c, err := client.Dial(addr, client.Options{PoolSize: 2})
	if err != nil {
		return fmt.Errorf("dial %s: %w", addr, err)
	}
	defer c.Close()

	tds, err := c.ListTables()
	if err != nil {
		return fmt.Errorf("list tables: %w", err)
	}
	found := false
	for _, td := range tds {
		if td.Name != st.Table {
			continue
		}
		for _, ix := range td.Indexes {
			if ix.Name == st.Index {
				found = true
			}
		}
	}
	if !found {
		return fmt.Errorf("recovered catalog lost %s/%s", st.Table, st.Index)
	}

	asOf, err := c.BeginAt(st.Tokens)
	if err != nil {
		return fmt.Errorf("begin AS OF %v: %w", st.Tokens, err)
	}
	defer asOf.Abort()
	checked := 0
	for g, want := range st.Groups {
		grp, err := strconv.ParseInt(g, 10, 64)
		if err != nil {
			return fmt.Errorf("state file group %q: %w", g, err)
		}
		rows, err := asOf.IndexLookup(st.Table, st.Index, grp)
		if err != nil {
			return fmt.Errorf("AS OF lookup group %d: %w", grp, err)
		}
		if int64(len(rows)) != want {
			return fmt.Errorf("AS OF group %d: %d rows after recovery, state file recorded %d", grp, len(rows), want)
		}
		checked++
	}
	fmt.Printf("verify ok: %s/%s recovered; %d groups match AS OF snapshot %v\n", st.Table, st.Index, checked, st.Tokens)
	return nil
}
